//! Application interface: per-host event-driven apps over stack connections.
//!
//! Applications (httpd, iperf, fio, a KV store…) are state machines driven
//! by stack events. They never touch the world directly; they queue
//! [`Action`]s on the [`HostApi`], which the world executes after the
//! handler returns — sends, NVMe I/O, CPU charges, and timers.

use ano_sim::payload::Payload;
use ano_sim::time::SimTime;
use ano_tls::ktls::PlainChunk;

use crate::world::ConnId;

/// What happened.
#[derive(Debug)]
pub enum AppEvent<'a> {
    /// The simulation started (set up initial requests).
    Start,
    /// In-order application bytes arrived on a connection (after any TLS
    /// processing). Chunks carry offload flags for layered consumers.
    Data {
        /// The connection.
        conn: ConnId,
        /// Plaintext runs.
        chunks: &'a [PlainChunk],
    },
    /// An NVMe I/O submitted via [`Action::NvmeRead`]/[`Action::NvmeWrite`]
    /// finished.
    NvmeDone {
        /// The connection the I/O ran on.
        conn: ConnId,
        /// Completion details.
        completion: &'a ano_nvme::host::Completion,
    },
    /// A timer set via [`Action::Timer`] fired.
    Timer {
        /// The caller's token.
        token: u64,
    },
    /// A connection's send queue drained below the watermark (flow control
    /// for streaming apps like iperf).
    Writable {
        /// The connection.
        conn: ConnId,
    },
}

/// What the app wants done.
#[derive(Debug)]
pub enum Action {
    /// Send application bytes on a connection.
    Send {
        /// The connection.
        conn: ConnId,
        /// The bytes (must be Real in functional mode).
        data: Payload,
    },
    /// Submit an NVMe read on an NVMe-host connection.
    NvmeRead {
        /// The connection.
        conn: ConnId,
        /// Request id returned in [`AppEvent::NvmeDone`].
        id: u64,
        /// Device byte offset.
        offset: u64,
        /// Length in bytes.
        len: u32,
    },
    /// Submit an NVMe write on an NVMe-host connection.
    NvmeWrite {
        /// The connection.
        conn: ConnId,
        /// Request id.
        id: u64,
        /// Device byte offset.
        offset: u64,
        /// The data.
        data: Payload,
    },
    /// Charge CPU cycles (application work) to this host.
    Charge {
        /// Cycles to add.
        cycles: u64,
    },
    /// Fire [`AppEvent::Timer`] at the given time.
    Timer {
        /// Caller's token.
        token: u64,
        /// Absolute deadline.
        at: SimTime,
    },
}

/// The app's window into the world during an event.
#[derive(Debug)]
pub struct HostApi {
    /// Current simulated time.
    pub now: SimTime,
    pub(crate) actions: Vec<Action>,
}

impl HostApi {
    pub(crate) fn new(now: SimTime) -> HostApi {
        HostApi {
            now,
            // ano-lint: allow(hot-alloc): capacity-0 action queue; fills only when the app acts
            actions: Vec::new(),
        }
    }

    /// Queues an action.
    pub fn push(&mut self, action: Action) {
        self.actions.push(action);
    }

    /// Convenience: send bytes.
    pub fn send(&mut self, conn: ConnId, data: Payload) {
        self.push(Action::Send { conn, data });
    }

    /// Convenience: NVMe read.
    pub fn nvme_read(&mut self, conn: ConnId, id: u64, offset: u64, len: u32) {
        self.push(Action::NvmeRead {
            conn,
            id,
            offset,
            len,
        });
    }

    /// Convenience: NVMe write.
    pub fn nvme_write(&mut self, conn: ConnId, id: u64, offset: u64, data: Payload) {
        self.push(Action::NvmeWrite {
            conn,
            id,
            offset,
            data,
        });
    }

    /// Convenience: charge app cycles.
    pub fn charge(&mut self, cycles: u64) {
        self.push(Action::Charge { cycles });
    }

    /// Convenience: set a timer.
    pub fn timer(&mut self, token: u64, at: SimTime) {
        self.push(Action::Timer { token, at });
    }
}

/// A per-host application.
pub trait HostApp {
    /// Handles one event; queue follow-up work on `api`.
    fn on_event(&mut self, api: &mut HostApi, event: AppEvent<'_>);
}

/// A no-op app (pure sink).
#[derive(Debug, Default)]
pub struct NullApp;

impl HostApp for NullApp {
    fn on_event(&mut self, _api: &mut HostApi, _event: AppEvent<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn api_queues_actions() {
        let mut api = HostApi::new(SimTime::ZERO);
        api.send(ConnId(1), Payload::synthetic(10));
        api.charge(100);
        api.timer(7, SimTime::from_micros(5));
        api.nvme_read(ConnId(2), 1, 0, 4096);
        assert_eq!(api.actions.len(), 4);
    }

    #[test]
    fn null_app_ignores_everything() {
        let mut app = NullApp;
        let mut api = HostApi::new(SimTime::ZERO);
        app.on_event(&mut api, AppEvent::Start);
        app.on_event(&mut api, AppEvent::Timer { token: 0 });
        assert!(api.actions.is_empty());
    }
}
