//! The discrete-event world: host registry, link topology, construction
//! and accessors.
//!
//! A [`World`] owns a registry of hosts (CPUs, per-host NICs, TCP
//! endpoints, L5P layers), a directed-pair [`LinkRegistry`], and the event
//! queue. Topology worlds are built with [`World::with_topology`] +
//! [`World::add_link`] + [`World::connect_pair`] (see
//! [`crate::topology::Fleet`] for the N×M builder); [`World::new`] remains
//! the two-host client↔server façade every scenario and golden-trace test
//! runs through — host 0, host 1, `links` ids 0 (`0→1`) and 1 (`1→0`),
//! byte-identical event ordering. Connections are created with a
//! [`ConnSpec`] per endpoint; autonomous offload engines are installed on
//! the owning host's NIC according to the spec. Applications
//! ([`crate::app::HostApp`]) drive traffic and receive events.
//!
//! Timing model: every packet charges the paper-calibrated per-packet stack
//! costs to the connection's core; L5P layers return their own cycle counts
//! (crypto, copies, digests, fallbacks); NIC offload upkeep (context
//! recovery replays, cache fills) is accounted as PCIe bytes and NIC-side
//! latency, never as CPU cycles — that asymmetry *is* the paper's thesis.
//!
//! Event processing lives in [`crate::runtime`].

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use ano_core::fault::DeviceFaults;
use ano_core::flow::{L5Flow, L5TxSource, TxMsgRef};
use ano_core::msg::FrameIndex;
use ano_core::nic::{Nic, NicConfig};
use ano_core::rss::FourTuple;
use ano_core::rx::RxEngine;
use ano_core::tx::TxEngine;
use ano_nvme::block::{BlockDevice, BlockDeviceConfig};
use ano_nvme::host::{NvmeHostConfig, NvmeTcpHost};
use ano_nvme::offload::{NvmeMode, NvmeRxFlow, NvmeTxFlow, RrMap};
use ano_nvme::parser::PduParser;
use ano_nvme::target::{NvmeTargetConfig, NvmeTcpTarget, Reply};
use ano_sim::cost::CostModel;
use ano_sim::cpu::CpuSet;
use ano_sim::link::{Impairments, Link, LinkMode, LinkRegistry, Script};
use ano_sim::payload::{DataMode, Payload};
use ano_sim::rng::SimRng;
use ano_sim::sched::Scheduler;
use ano_sim::time::{SimDuration, SimTime};
use ano_tcp::conn::TcpEndpoint;
use ano_tcp::segment::FlowId;
use ano_tcp::TcpConfig;
use ano_tls::ktls::{KtlsRx, KtlsTx, KtlsTxConfig};
use ano_tls::offload::{FlowMode, TlsRxFlow, TlsTxFlow};
use ano_tls::session::TlsSession;

use crate::app::HostApp;

/// Identifies one connection (same id on both hosts).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u32);

/// TLS endpoint options.
#[derive(Clone, Copy, Debug, Default)]
pub struct TlsSpec {
    /// Offload transmit crypto to the NIC.
    pub tx_offload: bool,
    /// Offload receive crypto to the NIC.
    pub rx_offload: bool,
    /// Zero-copy sendfile (only meaningful with `tx_offload`).
    pub zerocopy: bool,
}

impl TlsSpec {
    /// All offloads on, zero-copy.
    pub fn offloaded_zc() -> TlsSpec {
        TlsSpec {
            tx_offload: true,
            rx_offload: true,
            zerocopy: true,
        }
    }

    /// All offloads on, with the copy path.
    pub fn offloaded() -> TlsSpec {
        TlsSpec {
            tx_offload: true,
            rx_offload: true,
            zerocopy: false,
        }
    }
}

/// NVMe initiator options.
#[derive(Clone, Copy, Debug, Default)]
pub struct NvmeHostSpec {
    /// NIC copy offload for C2H data.
    pub copy_offload: bool,
    /// NIC CRC verification offload (receive).
    pub crc_offload: bool,
    /// NIC CRC fill offload for outgoing write data.
    pub crc_tx_offload: bool,
}

impl NvmeHostSpec {
    /// All offloads on.
    pub fn offloaded() -> NvmeHostSpec {
        NvmeHostSpec {
            copy_offload: true,
            crc_offload: true,
            crc_tx_offload: true,
        }
    }
}

/// NVMe controller options.
#[derive(Clone, Debug)]
pub struct NvmeTargetSpec {
    /// Backing device.
    pub device: BlockDeviceConfig,
    /// NIC CRC fill offload for outgoing read data.
    pub crc_tx_offload: bool,
    /// NIC CRC verification offload for incoming write data.
    pub crc_rx_offload: bool,
    /// Maximum data bytes per C2HData PDU.
    pub max_data_pdu: usize,
}

impl Default for NvmeTargetSpec {
    fn default() -> Self {
        NvmeTargetSpec {
            device: BlockDeviceConfig::default(),
            crc_tx_offload: false,
            crc_rx_offload: false,
            max_data_pdu: 256 * 1024,
        }
    }
}

/// Per-endpoint protocol configuration.
#[derive(Clone, Debug)]
pub enum ConnSpec {
    /// Plain TCP (the paper's "http" baseline).
    Raw,
    /// kTLS endpoint.
    Tls(TlsSpec),
    /// NVMe-TCP initiator (peer must be `NvmeTarget`).
    NvmeHost(NvmeHostSpec),
    /// NVMe-TCP controller.
    NvmeTarget(NvmeTargetSpec),
    /// NVMe-TCP initiator inside TLS (combined NVMe-TLS, §5.3).
    NvmeTlsHost(NvmeHostSpec, TlsSpec),
    /// NVMe-TCP controller inside TLS.
    NvmeTlsTarget(NvmeTargetSpec, TlsSpec),
}

/// Offload degradation policy: how the driver reacts when the device
/// misbehaves (see [`DeviceFaults`]). Installs that fail are retried with
/// exponential backoff and seeded jitter; a flow whose offload keeps
/// failing — exhausted install ladders, resync storms, context-cache
/// thrash — has its **circuit breaker** opened and runs in software for
/// the rest of the connection's life. Offload is an optimization: the
/// breaker trades throughput for never wedging on a sick device.
#[derive(Clone, Debug)]
pub struct DegradeConfig {
    /// First install-retry backoff; doubles per failed attempt.
    pub install_retry_base: SimDuration,
    /// Ceiling on the exponential backoff.
    pub install_retry_cap: SimDuration,
    /// Install attempts per ladder before the breaker opens.
    pub install_max_attempts: u32,
    /// Resync requests within [`DegradeConfig::storm_window`] that open
    /// the breaker (a flow constantly re-deriving its context gains
    /// nothing from offload).
    pub breaker_resync_storm: u32,
    /// Rx context-cache misses within the window that open the breaker
    /// (`None` disables the thrash breaker; most experiments *measure*
    /// thrash rather than react to it).
    pub breaker_cache_thrash: Option<u32>,
    /// Width of the storm/thrash observation window.
    pub storm_window: SimDuration,
    /// Re-emit an unanswered resync request every N tracked packets
    /// ([`RxEngine::set_rerequest_pkts`]); `None` assumes a lossless
    /// driver mailbox.
    pub rerequest_pkts: Option<u32>,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig {
            install_retry_base: SimDuration::from_micros(20),
            install_retry_cap: SimDuration::from_micros(2_000),
            install_max_attempts: 5,
            breaker_resync_storm: 64,
            breaker_cache_thrash: None,
            storm_window: SimDuration::from_micros(10_000),
            rerequest_pkts: None,
        }
    }
}

/// oRSS-style flow→core rebalancing policy. When set, every host watches
/// per-core cycle consumption over fixed windows and migrates the hottest
/// flow off an overloaded core onto the idlest one. Migration alone is an
/// *affinity* change: the flow's NIC context survives (same device, same
/// queue). With [`RebalanceConfig::steer_queues`] the rebalancer also
/// reprograms the NIC's RSS indirection bucket toward a queue of the
/// destination core, which makes interrupts follow the flow — at the cost
/// of a queue crossing that evicts the flow's rx context (the thrash the
/// PR-7 cache accounting and the PR-5 `cache_thrash` breaker observe).
#[derive(Clone, Copy, Debug)]
pub struct RebalanceConfig {
    /// Observation-window width; the rebalancer ticks once per window
    /// while the host is receiving traffic (it disarms when idle, so a
    /// drained world still reports idle).
    pub interval: SimDuration,
    /// A core is *hot* when its window cycles exceed `trigger ×` the
    /// per-core mean.
    pub trigger: f64,
    /// Noise floor: hot cores below this many window cycles are ignored.
    pub min_cycles: u64,
    /// Migrations per tick per host.
    pub max_moves: usize,
    /// Also reprogram the RSS indirection bucket so the flow's queue
    /// follows it to the new core (context-thrashing; see above).
    pub steer_queues: bool,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            interval: SimDuration::from_micros(1_000),
            trigger: 1.25,
            min_cycles: 20_000,
            max_moves: 1,
            steer_queues: false,
        }
    }
}

/// One network-chaos operation over the fleet's links. Group operations
/// (`Partition`/`Repair`/`Impair`) address every link crossing between two
/// host subsets, both directions; pair operations (`Hold`/`Release`/
/// `Script`) address one directed link. Applied immediately by
/// [`World::apply_net_op`] or on schedule through a [`NetPlan`].
#[derive(Clone, Debug)]
pub enum NetOp {
    /// Sever every link crossing between the two host groups: frames are
    /// swallowed (counted as `partitioned`, never `lost`) and the affected
    /// connections' offload engines are quiesced to software — offload
    /// state is disposable (§4.3), so declaring it gone is free.
    Partition(Vec<u16>, Vec<u16>),
    /// Restore every link crossing between the two host groups and drive
    /// each surviving connection back through the §4.4 install ladder; the
    /// reinstalled engines start in `Searching` and reconverge via §4.3.
    Repair(Vec<u16>, Vec<u16>),
    /// Stall the directed `src → dst` link: deliveries buffer in order
    /// until the matching `Release` (asymmetric ACK-path outage).
    Hold(u16, u16),
    /// Resume a held link, flushing its buffered deliveries in order.
    Release(u16, u16),
    /// Replace the impairments of every link crossing between the two
    /// groups ("this client's links turn lossy").
    Impair(Vec<u16>, Vec<u16>, Impairments),
    /// Install a scripted per-packet schedule on one directed link.
    SetScript(u16, u16, Script),
}

/// A deterministic timed chaos schedule over the fleet's links: each step
/// fires as a simulation event at its declared time, under the same seed
/// discipline as everything else (no wall clock, no extra RNG draws).
/// Install with [`World::set_net_plan`] before (or while) running.
#[derive(Clone, Debug, Default)]
pub struct NetPlan {
    steps: Vec<(SimTime, NetOp)>,
}

impl NetPlan {
    /// An empty plan.
    pub fn new() -> NetPlan {
        NetPlan::default()
    }

    /// Appends a step (builder-style). Steps may be appended in any order;
    /// the scheduler fires them by time.
    pub fn step(mut self, when: SimTime, op: NetOp) -> NetPlan {
        self.steps.push((when, op));
        self
    }

    /// The scheduled steps, in insertion order.
    pub fn steps(&self) -> &[(SimTime, NetOp)] {
        &self.steps
    }

    /// True when the plan has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The *declared outage windows* of this plan: for every `Partition`
    /// (or `Hold`) step, the interval until the first later `Repair` over
    /// the same groups (resp. `Release` of the same pair), or `horizon`
    /// when the plan never heals it. Forward-progress watchdogs suspend
    /// inside these windows and re-arm at their ends — a stall *during* a
    /// declared outage is chaos; a stall after repair is a bug.
    pub fn outage_windows(&self, horizon: SimTime) -> Vec<(SimTime, SimTime)> {
        let mut windows = Vec::new();
        for (i, (from, op)) in self.steps.iter().enumerate() {
            let heals: Box<dyn Fn(&NetOp) -> bool> = match op {
                NetOp::Partition(a, b) => {
                    let (a, b) = (a.clone(), b.clone());
                    Box::new(move |later| match later {
                        NetOp::Repair(ra, rb) => {
                            (*ra == a && *rb == b) || (*ra == b && *rb == a)
                        }
                        _ => false,
                    })
                }
                NetOp::Hold(src, dst) => {
                    let (src, dst) = (*src, *dst);
                    Box::new(move |later| matches!(later, NetOp::Release(rs, rd) if *rs == src && *rd == dst))
                }
                _ => continue,
            };
            let to = self
                .steps
                .iter()
                .skip(i + 1)
                .filter(|(t, later)| *t >= *from && heals(later))
                .map(|(t, _)| *t)
                .min()
                .unwrap_or(horizon);
            windows.push((*from, to));
        }
        windows
    }
}

/// Per-host hardware description for topology worlds: core count and the
/// NIC (context-cache) configuration. [`World::new`]'s two-host façade
/// derives these from [`WorldConfig::cores`] / [`WorldConfig::nic`]; fleet
/// builders mix heterogeneous hosts — e.g. many small clients against one
/// server whose NIC cache is the experiment's bottleneck.
#[derive(Clone, Debug)]
pub struct HostSpec {
    /// Cores on this host.
    pub cores: usize,
    /// This host's NIC configuration (context cache).
    pub nic: NicConfig,
}

impl Default for HostSpec {
    fn default() -> Self {
        HostSpec {
            cores: 8,
            nic: NicConfig::default(),
        }
    }
}

/// World construction parameters.
///
/// `cores`, `nic`, `impair_0to1` and `impair_1to0` describe the two-host
/// façade ([`World::new`]); [`World::with_topology`] takes per-host
/// [`HostSpec`]s instead and starts with no links.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// RNG seed (drives loss, reordering, key material).
    pub seed: u64,
    /// Payload fidelity for all connections.
    pub mode: DataMode,
    /// Cost model (per-host).
    pub cost: CostModel,
    /// Link rate, bits/second (both directions).
    pub link_rate_bps: u64,
    /// One-way propagation delay.
    pub link_delay: SimDuration,
    /// Impairments on host0 → host1.
    pub impair_0to1: Impairments,
    /// Impairments on host1 → host0.
    pub impair_1to0: Impairments,
    /// Cores per host: `[host0, host1]`.
    pub cores: [usize; 2],
    /// NIC configuration (context cache).
    pub nic: NicConfig,
    /// TCP tunables.
    pub tcp: TcpConfig,
    /// Delay for driver↔L5P resync notifications.
    pub resync_delay: SimDuration,
    /// Offload degradation policy (fault retry/backoff, circuit breaker).
    pub degrade: DegradeConfig,
    /// Flow→core rebalancing policy (`None` = static placement; the
    /// default, so existing scenarios and goldens see no new events).
    pub rebalance: Option<RebalanceConfig>,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 1,
            mode: DataMode::Modeled,
            cost: CostModel::calibrated(),
            link_rate_bps: 100_000_000_000,
            link_delay: SimDuration::from_micros(2),
            impair_0to1: Impairments::none(),
            impair_1to0: Impairments::none(),
            cores: [8, 8],
            nic: NicConfig::default(),
            tcp: TcpConfig::default(),
            resync_delay: SimDuration::from_micros(5),
            degrade: DegradeConfig::default(),
            rebalance: None,
        }
    }
}

/// Per-connection offload health: the windowed counters feeding the
/// circuit breaker, the breaker itself, and degraded-mode metering.
#[derive(Debug, Default)]
pub(crate) struct OffloadHealth {
    /// Why the breaker opened, when it did (`None` = closed; offloads may
    /// be installed). Once open it never closes: re-offloading a flow that
    /// proved the device sick would flap.
    pub(crate) breaker_open: Option<&'static str>,
    /// Start of the current observation window.
    window_start: SimTime,
    /// Resync requests seen in the window.
    resyncs_in_window: u32,
    /// Rx context-cache misses seen in the window.
    misses_in_window: u32,
    /// Payload packets processed while the breaker was open.
    pub(crate) degraded_pkts: u64,
}

impl OffloadHealth {
    fn roll(&mut self, now: SimTime, window: SimDuration) {
        if now >= self.window_start + window {
            self.window_start = now;
            self.resyncs_in_window = 0;
            self.misses_in_window = 0;
        }
    }

    /// Counts one resync request; true when the storm threshold is hit.
    pub(crate) fn note_resync(&mut self, now: SimTime, cfg: &DegradeConfig) -> bool {
        self.roll(now, cfg.storm_window);
        self.resyncs_in_window += 1;
        self.resyncs_in_window >= cfg.breaker_resync_storm
    }

    /// Counts one rx cache miss; true when the thrash threshold is hit.
    pub(crate) fn note_miss(&mut self, now: SimTime, cfg: &DegradeConfig) -> bool {
        let Some(limit) = cfg.breaker_cache_thrash else {
            return false;
        };
        self.roll(now, cfg.storm_window);
        self.misses_in_window += 1;
        self.misses_in_window >= limit
    }
}

/// Rebuilds a connection's receive engine: `None` installs a fresh context
/// at stream offset 0 (the `l5o_create` moment), `Some(off)` reinstalls
/// mid-stream in `Searching` (after a device reset or invalidation — the
/// new context knows nothing about the current framing).
pub(crate) type RxFactory = Rc<dyn Fn(Option<u64>) -> RxEngine>;

/// Rebuilds a connection's transmit engine. Mid-stream reinstalls need no
/// offset: the tx engine recovers its cursor autonomously via the §4.2
/// `l5o_get_tx_msgstate` + byte-replay path on the first packet it sees.
pub(crate) type TxFactory = Rc<dyn Fn() -> TxEngine>;

fn mk_rx(flow: Box<dyn L5Flow>, at: Option<u64>) -> RxEngine {
    match at {
        None => RxEngine::new(flow, 0, 0),
        Some(off) => RxEngine::new_searching(flow, off),
    }
}

fn fmode(modeled: bool, f: &FrameIndex) -> FlowMode {
    if modeled {
        FlowMode::Modeled(f.clone())
    } else {
        FlowMode::Functional
    }
}

fn nmode(modeled: bool, f: &FrameIndex) -> NvmeMode {
    if modeled {
        NvmeMode::Modeled(f.clone())
    } else {
        NvmeMode::Functional
    }
}

/// Retained plaintext-stream bytes for nested tx-engine recovery.
#[derive(Debug, Default)]
pub(crate) struct RetainBuf {
    start: u64,
    chunks: VecDeque<Payload>,
}

impl RetainBuf {
    fn push(&mut self, p: Payload) {
        self.chunks.push_back(p);
    }

    fn end(&self) -> u64 {
        self.start + self.chunks.iter().map(|c| c.len() as u64).sum::<u64>()
    }

    fn range(&self, from: u64, to: u64) -> Option<Payload> {
        if from < self.start || to > self.end() {
            return None;
        }
        // ano-lint: allow(hot-alloc): retransmit range assembly, inventoried for arena round 2 (ROADMAP item 1)
        let mut parts = Vec::new();
        let mut off = self.start;
        for c in &self.chunks {
            let c_end = off + c.len() as u64;
            if c_end > from && off < to {
                let s = from.saturating_sub(off) as usize;
                let e = (to.min(c_end) - off) as usize;
                parts.push(c.slice(s, e));
            }
            off = c_end;
            if off >= to {
                break;
            }
        }
        Some(Payload::concat(parts.iter()))
    }

    fn prune(&mut self, below: u64) {
        while let Some(front) = self.chunks.front() {
            let end = self.start + front.len() as u64;
            if end <= below {
                self.start = end;
                self.chunks.pop_front();
            } else {
                break;
            }
        }
    }
}

/// Shared transmit state for a *nested* NVMe engine inside a TLS tx offload:
/// capsule boundaries and retained plaintext bytes in plaintext-stream
/// offsets (the inner engine's recovery upcalls resolve here).
#[derive(Debug, Default)]
pub(crate) struct InnerTxShared {
    msgs: VecDeque<TxMsgRef>,
    end: u64,
    retain: RetainBuf,
}

impl InnerTxShared {
    pub(crate) fn push_capsule(&mut self, payload: &Payload) {
        let idx = self.msgs.back().map(|m| m.msg_index + 1).unwrap_or(0);
        self.msgs.push_back(TxMsgRef {
            msg_start: self.end,
            msg_index: idx,
        });
        self.end += payload.len() as u64;
        // ano-lint: allow(hot-alloc): Bytes-backed payload clone is an Arc refcount bump, not a heap copy
        self.retain.push(payload.clone());
    }

    pub(crate) fn prune(&mut self, below: u64) {
        while self.msgs.len() > 1 && self.msgs[1].msg_start <= below {
            self.msgs.pop_front();
        }
        self.retain.prune(below);
    }
}

impl L5TxSource for InnerTxShared {
    fn msg_at(&self, off: u64) -> Option<TxMsgRef> {
        if off >= self.end {
            return None;
        }
        let i = self.msgs.partition_point(|m| m.msg_start <= off);
        if i == 0 {
            None
        } else {
            Some(self.msgs[i - 1])
        }
    }

    fn stream_bytes(&self, from: u64, to: u64) -> Payload {
        self.retain
            .range(from, to)
            .unwrap_or_else(|| Payload::synthetic((to - from) as usize))
    }
}

/// Protocol glue per connection endpoint.
pub(crate) enum Proto {
    Raw,
    Tls {
        tx: KtlsTx,
        rx: KtlsRx,
    },
    NvmeHost {
        host: NvmeTcpHost,
    },
    NvmeTarget {
        target: NvmeTcpTarget,
        pending: BTreeMap<u64, Reply>,
        next_token: u64,
    },
    NvmeTlsHost {
        tls_tx: KtlsTx,
        tls_rx: KtlsRx,
        host: NvmeTcpHost,
        inner: Rc<RefCell<InnerTxShared>>,
    },
    NvmeTlsTarget {
        tls_tx: KtlsTx,
        tls_rx: KtlsRx,
        target: NvmeTcpTarget,
        pending: BTreeMap<u64, Reply>,
        next_token: u64,
        inner: Rc<RefCell<InnerTxShared>>,
    },
}

/// One endpoint of a connection.
pub(crate) struct ConnState {
    pub(crate) tcp: TcpEndpoint,
    pub(crate) out_flow: FlowId,
    pub(crate) in_flow: FlowId,
    /// The host at the other end of this connection.
    pub(crate) peer: u16,
    /// Registry id of the outgoing link (this host → peer); resolved with
    /// a plain index in the transmit pump.
    pub(crate) link_out: u32,
    pub(crate) proto: Proto,
    pub(crate) core: usize,
    /// The connection's true retransmission deadline (mirrors
    /// `tcp.rto_deadline()` as of the last pump).
    pub(crate) armed_rto: Option<SimTime>,
    /// The single live `Event::Rto` for this connection: `(fire time, gen)`.
    /// When the deadline extends past the fire time the event re-schedules
    /// itself on dispatch instead of a new event being queued per ACK —
    /// keeping timer churn out of the scheduler heap.
    pub(crate) rto_event: Option<(SimTime, u64)>,
    pub(crate) rto_gen: u64,
    /// Application bytes delivered in order (throughput metering).
    pub(crate) delivered: u64,
    /// App asked to be told when the send queue drains.
    pub(crate) blocked: bool,
    /// Rebuilds the rx engine (install retries, post-reset re-offload).
    pub(crate) rx_factory: Option<RxFactory>,
    /// Rebuilds the tx engine.
    pub(crate) tx_factory: Option<TxFactory>,
    /// Circuit-breaker state and the counters feeding it.
    pub(crate) health: OffloadHealth,
    /// An rx engine has been installed at least once. Only the *first*
    /// install may take the at-offset-0 fast path (engine born in
    /// `Offloading`); any reinstall — install retry, post-partition repair
    /// — starts `Searching` so the flow's transition ladder stays legal
    /// and reconvergence is earned on live traffic.
    pub(crate) rx_installed_once: bool,
    /// Payload packets received in the current rebalance window (hot-flow
    /// selection; reset every tick, untouched when rebalancing is off).
    pub(crate) pkts_in_window: u64,
    /// The 4-tuple this endpoint's *incoming* flow is RSS-steered by on
    /// the local NIC (`None` on single-queue hosts).
    pub(crate) rx_tuple: Option<FourTuple>,
}

pub(crate) struct HostState {
    pub(crate) cpu: CpuSet,
    pub(crate) nic: Nic,
    pub(crate) conns: BTreeMap<ConnId, ConnState>,
    /// Last connection whose packets each core processed (batching model).
    pub(crate) last_conn: Vec<Option<ConnId>>,
    /// The host NIC's scripted fault schedule (empty by default: every
    /// query is a counter bump, nothing else).
    pub(crate) faults: DeviceFaults,
    /// IRQ affinity: which core services each NIC rx queue (default
    /// `queue % cores`). Connections land on the core of their steered
    /// queue when the NIC is multi-queue.
    pub(crate) queue_core: Vec<usize>,
    /// A rebalance tick is scheduled (armed lazily on traffic, disarmed
    /// after an idle window so `is_idle` can drain).
    pub(crate) rebalance_armed: bool,
    /// Per-core cycle snapshot at the current rebalance-window start.
    pub(crate) rebalance_snapshot: Vec<u64>,
    /// Flow→core migrations performed by the rebalancer on this host.
    pub(crate) migrations: u64,
}

/// Queued events.
pub(crate) enum Event {
    Packet {
        host: u16,
        conn: ConnId,
        seq: u32,
        seq64: u64,
        ack: u32,
        wnd: u32,
        sack: Vec<(u32, u32)>,
        payload: Payload,
    },
    /// The application finished processing `bytes` of conn's stream
    /// (reopens the advertised receive window at CPU-completion time).
    Consume {
        host: u16,
        conn: ConnId,
        bytes: u64,
    },
    Rto {
        host: u16,
        conn: ConnId,
        gen: u64,
    },
    ResyncReq {
        host: u16,
        conn: ConnId,
        layer: u8,
        tcpsn: u64,
    },
    ResyncResp {
        host: u16,
        conn: ConnId,
        layer: u8,
        tcpsn: u64,
        ok: bool,
        idx: u64,
        /// Device epoch the request was issued under; the NIC discards the
        /// response if a reset or invalidation intervened.
        epoch: u64,
    },
    /// Retry one half of a connection's offload install after a backoff.
    InstallRetry {
        host: u16,
        conn: ConnId,
        rx: bool,
        attempt: u32,
    },
    /// Fire entry `idx` of the host's scheduled device-fault list.
    DeviceFault {
        host: u16,
        idx: usize,
    },
    /// Fire step `idx` of the world's scheduled network-chaos plan
    /// ([`World::set_net_plan`]).
    NetStep {
        idx: usize,
    },
    TargetReply {
        host: u16,
        conn: ConnId,
        token: u64,
    },
    /// Periodic flow→core rebalance tick for one host (armed lazily by
    /// the first payload packet of a window; not rescheduled after an
    /// idle window).
    Rebalance {
        host: u16,
    },
    AppTimer {
        host: u16,
        token: u64,
    },
}

/// The simulation.
pub struct World {
    pub(crate) cfg: WorldConfig,
    pub(crate) sched: Scheduler<Event>,
    pub(crate) rng: SimRng,
    pub(crate) hosts: Vec<HostState>,
    /// Directed-pair link registry. The two-host façade registers ids 0
    /// (`0→1`) and 1 (`1→0`) so dir-based accessors keep their meaning.
    pub(crate) links: LinkRegistry,
    pub(crate) apps: Vec<Option<Box<dyn HostApp>>>,
    pub(crate) tracer: ano_trace::Tracer,
    /// Endpoint hosts per live connection (`disconnect` teardown).
    conn_hosts: BTreeMap<ConnId, (u16, u16)>,
    next_conn: u32,
    /// The installed network-chaos schedule ([`World::set_net_plan`]);
    /// `Event::NetStep { idx }` indexes into it.
    net_plan: NetPlan,
    /// Deliveries buffered per held link id ([`LinkMode::Held`]): the link
    /// computes arrival times as usual, the world parks the packet events
    /// here and flushes them — in order, clamped to "now" — on release.
    pub(crate) held: BTreeMap<u32, Vec<(SimTime, Event)>>,
    /// Reusable event-burst buffer for the batched `run_until` loop; lives
    /// here so steady state dispatches with zero allocation per batch.
    pub(crate) batch: Vec<Event>,
    /// Reusable link-delivery buffer for `pump_conn`'s transmit fan-out.
    pub(crate) burst: Vec<ano_sim::link::Delivery>,
    /// Reusable deferred-app-call buffer for `handle_packet`.
    pub(crate) app_calls: Vec<crate::runtime::AppCall>,
    /// Small pool of plaintext-chunk buffers recycled between the kTLS
    /// receive path and the application-notification path.
    pub(crate) plains_pool: Vec<Vec<ano_tls::ktls::PlainChunk>>,
    /// Scheduler clamp count already surfaced to the tracer.
    pub(crate) clamps_traced: u64,
}

impl World {
    /// Builds the two-host client↔server façade: hosts 0 and 1 from
    /// `cfg.cores` / `cfg.nic`, links `0→1` (registry id 0, with
    /// `cfg.impair_0to1`) and `1→0` (id 1, `cfg.impair_1to0`). Every
    /// pre-topology scenario, chaos and golden-trace test runs through
    /// this constructor unchanged.
    pub fn new(cfg: WorldConfig) -> World {
        let specs = [0, 1].map(|i| HostSpec {
            cores: cfg.cores[i],
            nic: cfg.nic,
        });
        let mut w = World::with_topology(cfg, specs.to_vec());
        w.add_link(0, 1, w.cfg.impair_0to1.clone());
        w.add_link(1, 0, w.cfg.impair_1to0.clone());
        w
    }

    /// Builds an idle world with one host per [`HostSpec`] and **no
    /// links**: wire the topology with [`World::add_link`] before
    /// connecting. `cfg.cores`, `cfg.nic` and `cfg.impair_*` are façade
    /// parameters and are ignored here.
    pub fn with_topology(cfg: WorldConfig, specs: Vec<HostSpec>) -> World {
        assert!(
            specs.len() >= 2 && specs.len() <= u16::MAX as usize,
            "a topology needs 2..=65535 hosts"
        );
        let rng = SimRng::seed(cfg.seed);
        let tracer = ano_trace::Tracer::default();
        let hosts: Vec<HostState> = specs
            .iter()
            .map(|spec| {
                let mut nic = Nic::new(spec.nic);
                nic.set_tracer(tracer.clone());
                let queues = spec.nic.rx_queues.max(1) as usize;
                HostState {
                    cpu: CpuSet::new(spec.cores, cfg.cost.freq_hz),
                    nic,
                    conns: BTreeMap::new(),
                    last_conn: vec![None; spec.cores],
                    faults: DeviceFaults::none(),
                    queue_core: (0..queues).map(|q| q % spec.cores).collect(),
                    rebalance_armed: false,
                    rebalance_snapshot: Vec::new(),
                    migrations: 0,
                }
            })
            .collect();
        let apps = specs.iter().map(|_| None).collect();
        World {
            cfg,
            sched: Scheduler::new(),
            rng,
            hosts,
            links: LinkRegistry::new(),
            apps,
            tracer,
            conn_hosts: BTreeMap::new(),
            next_conn: 0,
            net_plan: NetPlan::new(),
            held: BTreeMap::new(),
            batch: Vec::new(),
            burst: Vec::new(),
            app_calls: Vec::new(),
            plains_pool: Vec::new(),
            clamps_traced: 0,
        }
    }

    /// Registers the unidirectional `src → dst` link (rate and propagation
    /// from the world config) and returns its registry id.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range hosts or a duplicate pair.
    pub fn add_link(&mut self, src: u16, dst: u16, impair: Impairments) -> u32 {
        assert!(
            (src as usize) < self.hosts.len() && (dst as usize) < self.hosts.len() && src != dst,
            "link endpoints must be distinct registered hosts"
        );
        self.links.add(
            src,
            dst,
            Link::new(self.cfg.link_rate_bps, self.cfg.link_delay, impair),
        )
    }

    /// Number of hosts in the topology.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// The world's shared [`ano_trace::Tracer`]. Disabled by default; call
    /// `tracer().set_enabled(true)` before [`World::start`] to record. Every
    /// layer holds a flow-scoped clone, so enabling here turns the whole
    /// stack's instrumentation on at once.
    pub fn tracer(&self) -> &ano_trace::Tracer {
        &self.tracer
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// The cost model in use.
    pub fn cost(&self) -> CostModel {
        self.cfg.cost.clone()
    }

    /// Sets the tolerated past-time scheduling lag before debug builds
    /// assert (forwarded to [`ano_sim::sched::Scheduler::set_clamp_epsilon`]).
    pub fn set_clamp_epsilon(&mut self, epsilon: ano_sim::time::SimDuration) {
        self.sched.set_clamp_epsilon(epsilon);
    }

    /// Installs the application for a host.
    pub fn set_app(&mut self, host: usize, app: Box<dyn HostApp>) {
        self.apps[host] = Some(app);
    }

    /// Replaces the façade link's impairments mid-run (loss/reorder
    /// sweeps). `true` is the `0→1` direction; topology worlds address
    /// links by pair via [`World::set_impairments_between`].
    pub fn set_impairments(&mut self, dir0to1: bool, imp: Impairments) {
        let (src, dst) = if dir0to1 { (0, 1) } else { (1, 0) };
        self.set_impairments_between(src, dst, imp);
    }

    /// Installs a scripted per-packet schedule on one façade link
    /// direction, keeping that direction's probabilistic knobs (scenario
    /// harness hook; scripting only `dir0to1 = false` gives asymmetric
    /// ACK-path adversity for a 0→1 data flow).
    pub fn set_script(&mut self, dir0to1: bool, script: ano_sim::link::Script) {
        let (src, dst) = if dir0to1 { (0, 1) } else { (1, 0) };
        self.set_script_between(src, dst, script);
    }

    /// Replaces the `src → dst` link's impairments (per-pair partitions
    /// and sweeps in topology worlds).
    ///
    /// # Panics
    ///
    /// Panics if the pair has no link.
    pub fn set_impairments_between(&mut self, src: u16, dst: u16, imp: Impairments) {
        self.links
            .between_mut(src, dst)
            .unwrap_or_else(|| panic!("no link {src} -> {dst}"))
            .set_impairments(imp);
    }

    /// Installs a scripted schedule on the `src → dst` link, keeping its
    /// probabilistic knobs.
    ///
    /// # Panics
    ///
    /// Panics if the pair has no link.
    pub fn set_script_between(&mut self, src: u16, dst: u16, script: ano_sim::link::Script) {
        self.links
            .between_mut(src, dst)
            .unwrap_or_else(|| panic!("no link {src} -> {dst}"))
            .set_script(script);
    }

    /// Creates a connection with `spec0` on host 0 and `spec1` on host 1
    /// (the two-host façade of [`World::connect_pair`]).
    pub fn connect(&mut self, spec0: ConnSpec, spec1: ConnSpec) -> ConnId {
        self.connect_pair(0, 1, spec0, spec1)
    }

    /// Creates a connection with `spec_a` on host `a` and `spec_b` on host
    /// `b`. Both directed links must already be registered.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical pairings (an NVMe host whose peer is not a
    /// matching target, TLS against Raw, …), identical endpoints, or a
    /// missing link in either direction.
    pub fn connect_pair(&mut self, a: u16, b: u16, spec0: ConnSpec, spec1: ConnSpec) -> ConnId {
        check_pairing(&spec0, &spec1);
        let link_ab = self
            .links
            .id(a, b)
            .unwrap_or_else(|| panic!("no link {a} -> {b}"));
        let link_ba = self
            .links
            .id(b, a)
            .unwrap_or_else(|| panic!("no link {b} -> {a}"));
        let id = ConnId(self.next_conn);
        self.next_conn += 1;
        let flow0 = FlowId(id.0 as u64 * 2);
        let flow1 = FlowId(id.0 as u64 * 2 + 1);

        let sess01 = TlsSession::from_seed(self.cfg.seed ^ flow0.0.wrapping_mul(0x9E37_79B9));
        let sess10 = TlsSession::from_seed(self.cfg.seed ^ flow1.0.wrapping_mul(0x9E37_79B9));
        // Frame indexes per direction: TLS records in TCP-stream offsets,
        // NVMe capsules in their own (plaintext) stream offsets.
        let tls_f01 = FrameIndex::new();
        let tls_f10 = FrameIndex::new();
        let nvme_f01 = FrameIndex::new();
        let nvme_f10 = FrameIndex::new();

        let mut b0 = self.build_endpoint(&spec0, &sess01, &sess10, &tls_f01, &tls_f10, &nvme_f01, &nvme_f10);
        let mut b1 = self.build_endpoint(&spec1, &sess10, &sess01, &tls_f10, &tls_f01, &nvme_f10, &nvme_f01);
        // L5P receive layers are labeled with the flow they consume; the
        // NIC scopes engine handles itself at install time.
        attach_proto_tracer(&mut b0.proto, &self.tracer, flow1);
        attach_proto_tracer(&mut b1.proto, &self.tracer, flow0);

        // Receive-side placement. Single-queue hosts keep the historical
        // round-robin core assignment (byte-identical to every pre-RSS
        // trace); multi-queue hosts steer the incoming flow through the
        // NIC's RSS hash and land the connection on the steered queue's
        // IRQ core. The outgoing flow's tx completions are pinned to a
        // queue of the same core.
        let (core0, tuple0) = Self::place_conn(&mut self.hosts[a as usize], id, flow1, b, a);
        let (core1, tuple1) = Self::place_conn(&mut self.hosts[b as usize], id, flow0, a, b);
        Self::pin_tx_queue(&mut self.hosts[a as usize], flow0, core0);
        Self::pin_tx_queue(&mut self.hosts[b as usize], flow1, core1);
        let mut tcp0 = TcpEndpoint::new(flow0, self.cfg.tcp.clone());
        tcp0.set_tracer(self.tracer.scoped(flow0.0));
        let mut tcp1 = TcpEndpoint::new(flow1, self.cfg.tcp.clone());
        tcp1.set_tracer(self.tracer.scoped(flow1.0));
        self.hosts[a as usize].conns.insert(
            id,
            ConnState {
                tcp: tcp0,
                out_flow: flow0,
                in_flow: flow1,
                peer: b,
                link_out: link_ab,
                proto: b0.proto,
                core: core0,
                armed_rto: None,
                rto_event: None,
                rto_gen: 0,
                delivered: 0,
                blocked: false,
                rx_factory: b0.rx_factory,
                tx_factory: b0.tx_factory,
                health: OffloadHealth::default(),
                rx_installed_once: false,
                pkts_in_window: 0,
                rx_tuple: tuple0,
            },
        );
        self.hosts[b as usize].conns.insert(
            id,
            ConnState {
                tcp: tcp1,
                out_flow: flow1,
                in_flow: flow0,
                peer: a,
                link_out: link_ba,
                proto: b1.proto,
                core: core1,
                armed_rto: None,
                rto_event: None,
                rto_gen: 0,
                delivered: 0,
                blocked: false,
                rx_factory: b1.rx_factory,
                tx_factory: b1.tx_factory,
                health: OffloadHealth::default(),
                rx_installed_once: false,
                pkts_in_window: 0,
                rx_tuple: tuple1,
            },
        );
        self.conn_hosts.insert(id, (a, b));
        // Offloads go through the degradation policy: the host's fault
        // script may fail or delay the install, starting a retry ladder.
        for h in [a, b] {
            self.try_install(h as usize, id, true, 0);
            self.try_install(h as usize, id, false, 0);
        }
        id
    }

    /// Tears a connection down on both hosts: offload contexts are
    /// destroyed with orderly write-back, per-core batching state is
    /// cleared, and the id is retired. In-flight events addressed to the
    /// dead connection are discarded on dispatch — exactly how the runtime
    /// already treats unknown connections — so churn workloads (short-lived
    /// connections stressing the §4.4 install path) need no quiescing.
    pub fn disconnect(&mut self, conn: ConnId) {
        let Some((a, b)) = self.conn_hosts.remove(&conn) else {
            return;
        };
        for h in [a, b] {
            let host = &mut self.hosts[h as usize];
            if let Some(c) = host.conns.remove(&conn) {
                host.nic.destroy(c.in_flow);
                host.nic.destroy(c.out_flow);
                for slot in host.last_conn.iter_mut() {
                    if *slot == Some(conn) {
                        *slot = None;
                    }
                }
            }
        }
    }

    /// The `(host_a, host_b)` endpoints of a live connection.
    pub fn conn_endpoints(&self, conn: ConnId) -> Option<(u16, u16)> {
        self.conn_hosts.get(&conn).copied()
    }

    /// Deterministic synthetic 4-tuple for the `src → dst` direction of a
    /// connection: hosts live in 10.0.0.0/8 numbered by id, the source
    /// port encodes the connection id, and every flow terminates on :443.
    /// The simulator has no real addressing — this exists so the RSS hash
    /// has honest per-flow entropy to chew on.
    fn flow_tuple(src: u16, dst: u16, conn: u32) -> FourTuple {
        FourTuple {
            src_ip: 0x0A00_0000 | src as u32,
            dst_ip: 0x0A00_0000 | dst as u32,
            src_port: 10_000u16.wrapping_add(conn as u16),
            dst_port: 443,
        }
    }

    /// Picks the core a new connection runs on at `host` (whose incoming
    /// flow is `in_flow`, flowing `src → dst`). Multi-queue NICs steer the
    /// flow through the RSS hash and return the steered queue's IRQ core
    /// plus the tuple (kept for later indirection-table reprogramming);
    /// single-queue NICs keep the historical round-robin placement.
    fn place_conn(
        host: &mut HostState,
        id: ConnId,
        in_flow: FlowId,
        src: u16,
        dst: u16,
    ) -> (usize, Option<FourTuple>) {
        if host.nic.rx_queues() > 1 {
            let tuple = Self::flow_tuple(src, dst, id.0);
            let q = host.nic.steer_rx(in_flow, tuple);
            (host.queue_core[q as usize], Some(tuple))
        } else {
            (id.0 as usize % host.cpu.num_cores(), None)
        }
    }

    /// Pins a multi-queue host's outgoing flow to a tx queue serviced by
    /// the connection's core, so completions land where the stack runs.
    fn pin_tx_queue(host: &mut HostState, out_flow: FlowId, core: usize) {
        if host.nic.rx_queues() > 1 {
            if let Some(q) = host.queue_core.iter().position(|&c| c == core) {
                host.nic.steer_tx(out_flow, q as u16);
            }
        }
    }

    /// One rung of an install ladder: offers the install to the host's
    /// fault script, then installs, retries with exponential backoff, or —
    /// once the ladder is exhausted — opens the connection's breaker.
    pub(crate) fn try_install(&mut self, h: usize, conn: ConnId, rx: bool, attempt: u32) {
        use ano_core::fault::{DeviceOp, FaultAction};
        let now = self.sched.now();
        let (flow, at) = {
            let host = &mut self.hosts[h];
            let Some(c) = host.conns.get_mut(&conn) else {
                return;
            };
            if c.health.breaker_open.is_some() {
                return;
            }
            let flow = if rx { c.in_flow } else { c.out_flow };
            let have_factory = if rx {
                c.rx_factory.is_some()
            } else {
                c.tx_factory.is_some()
            };
            let installed = if rx {
                host.nic.has_rx(flow)
            } else {
                host.nic.has_tx(flow)
            };
            if !have_factory || installed {
                return; // nothing to offload, or a live engine already won
            }
            // Install at stream offset 0 only on the flow's *first* install
            // while no bytes have been delivered; after either, the
            // context's cursor must be re-derived (Searching) like any
            // mid-stream install — a reinstalled engine earns `Offloading`
            // back through the §4.3 ladder on live traffic.
            let rcv = c.tcp.rcv_nxt();
            (flow, if rcv == 0 && !c.rx_installed_once { None } else { Some(rcv) })
        };
        let op = if rx { DeviceOp::InstallRx } else { DeviceOp::InstallTx };
        let dir = if rx { "rx" } else { "tx" };
        match self.hosts[h].faults.on_op(op, now) {
            // Fail: the device rejected the install. Drop: the request was
            // lost in the mailbox — the driver's completion timeout makes
            // that indistinguishable from a rejection, so both retry.
            Some(FaultAction::Fail | FaultAction::Drop) => {
                self.tracer
                    .scoped(flow.0)
                    .record(|| ano_trace::Event::InstallFail { dir, attempt });
                self.tracer.count("stack.install_fail", 1);
                let next = attempt + 1;
                if next >= self.cfg.degrade.install_max_attempts {
                    self.open_breaker(h, conn, "install_failures");
                } else {
                    let delay = self.install_backoff(next);
                    self.tracer.scoped(flow.0).record(|| ano_trace::Event::InstallRetry {
                        dir,
                        attempt: next,
                        delay_ns: delay.as_nanos(),
                    });
                    self.sched.schedule(
                        now + delay,
                        Event::InstallRetry {
                            host: h as u16,
                            conn,
                            rx,
                            attempt: next,
                        },
                    );
                }
            }
            Some(FaultAction::Delay(d)) => {
                // The install completes late; when the deferred rung fires
                // it is offered to the script again as a fresh attempt.
                self.sched.schedule(
                    now + d,
                    Event::InstallRetry {
                        host: h as u16,
                        conn,
                        rx,
                        attempt,
                    },
                );
            }
            None => {
                let host = &mut self.hosts[h];
                let Some(c) = host.conns.get_mut(&conn) else {
                    return;
                };
                if rx {
                    let Some(f) = &c.rx_factory else { return };
                    let mut engine = f(at);
                    engine.set_rerequest_pkts(self.cfg.degrade.rerequest_pkts);
                    host.nic.install_rx(flow, engine);
                    c.rx_installed_once = true;
                } else {
                    let Some(f) = &c.tx_factory else { return };
                    host.nic.install_tx(flow, f());
                }
                if attempt > 0 {
                    self.tracer
                        .scoped(flow.0)
                        .record(|| ano_trace::Event::InstallOk { dir, attempt });
                }
            }
        }
    }

    /// Exponential install backoff with seeded jitter: `base * 2^(n-1)`
    /// capped, plus a uniform draw in `[0, base/2)` so synchronized retry
    /// ladders (e.g. every flow after a reset) de-correlate.
    fn install_backoff(&mut self, attempt: u32) -> SimDuration {
        let d = &self.cfg.degrade;
        let base = d.install_retry_base.as_nanos().max(1);
        let exp = base.saturating_mul(1u64 << (attempt - 1).min(20));
        let capped = exp.min(d.install_retry_cap.as_nanos().max(base));
        let jitter = self.rng.range_u64(0, (base / 2).max(1));
        SimDuration::from_nanos(capped + jitter)
    }

    /// Opens a connection's circuit breaker: its offload engines are
    /// uninstalled (orderly, with context write-back) and the flow runs in
    /// software permanently. Idempotent.
    pub(crate) fn open_breaker(&mut self, h: usize, conn: ConnId, reason: &'static str) {
        // ano-lint: allow(transitive-panic): host index is a dispatch-validated topology id
        let host = &mut self.hosts[h];
        let Some(c) = host.conns.get_mut(&conn) else {
            return;
        };
        if c.health.breaker_open.is_some() {
            return;
        }
        c.health.breaker_open = Some(reason);
        host.nic.uninstall_rx(c.in_flow);
        host.nic.uninstall_tx(c.out_flow);
        self.tracer
            .scoped(c.in_flow.0)
            .record(|| ano_trace::Event::BreakerOpen { reason });
        self.tracer.count("stack.breaker_open", 1);
    }

    /// Installs a device-fault schedule on a host's NIC. Scheduled one-shot
    /// faults become simulation events now; operation rules apply from the
    /// next install/resync attempt on.
    pub fn set_device_faults(&mut self, host: usize, plan: DeviceFaults) {
        for (idx, (when, _)) in plan.scheduled().iter().enumerate() {
            self.sched.schedule(
                *when,
                Event::DeviceFault {
                    host: host as u16,
                    idx,
                },
            );
        }
        self.hosts[host].faults = plan;
    }

    // ------------------------------------------------------------------
    // Network chaos: partitions, holds and subset impairments.

    /// Installs a timed network-chaos schedule: every step becomes a
    /// simulation event at its declared time. Deterministic under the
    /// world's seed — plan application draws no randomness.
    pub fn set_net_plan(&mut self, plan: NetPlan) {
        for (idx, (when, _)) in plan.steps().iter().enumerate() {
            self.sched.schedule(*when, Event::NetStep { idx });
        }
        self.net_plan = plan;
    }

    /// Fires one step of the installed chaos plan (dispatch target of
    /// `Event::NetStep`).
    pub(crate) fn handle_net_step(&mut self, idx: usize) {
        let Some((_, op)) = self.net_plan.steps().get(idx) else {
            return;
        };
        let op = op.clone();
        self.apply_net_op(op);
    }

    /// Applies one chaos operation immediately (imperative spelling of a
    /// [`NetPlan`] step; harnesses drive mid-run chaos through this).
    pub fn apply_net_op(&mut self, op: NetOp) {
        match op {
            NetOp::Partition(a, b) => {
                self.partition(&a, &b);
            }
            NetOp::Repair(a, b) => {
                self.repair(&a, &b);
            }
            NetOp::Hold(src, dst) => self.hold_between(src, dst),
            NetOp::Release(src, dst) => self.release_between(src, dst),
            NetOp::Impair(a, b, imp) => {
                self.links.impair_crossing(&a, &b, &imp);
            }
            NetOp::SetScript(src, dst, script) => {
                self.links.set_script_between(src, dst, script);
            }
        }
    }

    /// Severs every link crossing between two host groups (both
    /// directions) and quiesces the affected connections' offload engines
    /// to software. Quiescing at declare time is the §4.3 autonomy
    /// property made operational: offload state is disposable, so the
    /// driver throws it away the moment the path goes dark instead of
    /// letting a blind engine accumulate resync noise; the engines'
    /// transition ladders close at `Searching`, keeping per-flow traces
    /// legal across the outage. Returns the severed pairs.
    pub fn partition(&mut self, hosts_a: &[u16], hosts_b: &[u16]) -> Vec<(u16, u16)> {
        let cut = self.links.partition(hosts_a, hosts_b);
        for &(src, dst) in &cut {
            self.tracer.record(|| ano_trace::Event::LinkPartition {
                src: src as u64,
                dst: dst as u64,
            });
        }
        self.tracer.count("net.partitions", cut.len() as u64);
        self.quiesce_cut(&cut);
        cut
    }

    /// Restores every link crossing between two host groups, flushes any
    /// deliveries a `Hold` buffered on them, and drives each surviving
    /// connection back through the install ladder — reinstalled rx engines
    /// start in `Searching` at the current stream cursor and reconverge
    /// through the §4.3 resync ladder on the next data. Breaker-open
    /// connections stay in software. Returns the healed pairs.
    pub fn repair(&mut self, hosts_a: &[u16], hosts_b: &[u16]) -> Vec<(u16, u16)> {
        let healed = self.links.repair(hosts_a, hosts_b);
        for &(src, dst) in &healed {
            self.tracer.record(|| ano_trace::Event::LinkRepair {
                src: src as u64,
                dst: dst as u64,
            });
            if let Some(id) = self.links.id(src, dst) {
                self.flush_held(id);
            }
        }
        self.tracer.count("net.repairs", healed.len() as u64);
        self.reoffload_cut(&healed);
        healed
    }

    /// Stalls the directed `src → dst` link: deliveries buffer (in the
    /// world's hold queue) until [`World::release_between`].
    ///
    /// # Panics
    ///
    /// Panics when the pair has no link.
    pub fn hold_between(&mut self, src: u16, dst: u16) {
        self.links.hold(src, dst);
        self.tracer.record(|| ano_trace::Event::LinkHold {
            src: src as u64,
            dst: dst as u64,
        });
    }

    /// Resumes a held `src → dst` link, flushing its buffered deliveries
    /// in order (arrival times clamped to "now").
    ///
    /// # Panics
    ///
    /// Panics when the pair has no link.
    pub fn release_between(&mut self, src: u16, dst: u16) {
        self.links.release(src, dst);
        let flushed = match self.links.id(src, dst) {
            Some(id) => self.flush_held(id),
            None => 0,
        };
        self.tracer.record(|| ano_trace::Event::LinkRelease {
            src: src as u64,
            dst: dst as u64,
            flushed,
        });
    }

    /// The chaos mode of the `src → dst` link.
    ///
    /// # Panics
    ///
    /// Panics if the pair has no link.
    pub fn link_mode_between(&self, src: u16, dst: u16) -> LinkMode {
        self.links
            .between(src, dst)
            .unwrap_or_else(|| panic!("no link {src} -> {dst}"))
            .mode()
    }

    /// Deliveries currently parked on the held `src → dst` link.
    pub fn held_between(&self, src: u16, dst: u16) -> usize {
        self.links
            .id(src, dst)
            .and_then(|id| self.held.get(&id))
            .map(|v| v.len())
            .unwrap_or(0)
    }

    /// Reschedules every delivery parked on link `id`; returns the count.
    fn flush_held(&mut self, id: u32) -> u64 {
        let Some(buf) = self.held.remove(&id) else {
            return 0;
        };
        let now = self.sched.now();
        let n = buf.len() as u64;
        for (at, ev) in buf {
            self.sched.schedule(at.max(now), ev);
        }
        n
    }

    /// Uninstalls the offload engines of every connection whose outgoing
    /// link is in `cut` (orderly, with quiesce + write-back — the same
    /// teardown a breaker performs, without opening the breaker).
    fn quiesce_cut(&mut self, cut: &[(u16, u16)]) {
        for &(src, dst) in cut {
            let host = &mut self.hosts[src as usize];
            for c in host.conns.values() {
                if c.peer == dst {
                    host.nic.uninstall_rx(c.in_flow);
                    host.nic.uninstall_tx(c.out_flow);
                }
            }
        }
    }

    /// Re-runs the install ladder for every connection whose outgoing link
    /// is in `healed`.
    fn reoffload_cut(&mut self, healed: &[(u16, u16)]) {
        for &(src, dst) in healed {
            let conns: Vec<ConnId> = self.hosts[src as usize]
                .conns
                .iter()
                .filter(|(_, c)| c.peer == dst)
                .map(|(&id, _)| id)
                .collect();
            for conn in conns {
                self.try_install(src as usize, conn, true, 0);
                self.try_install(src as usize, conn, false, 0);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn build_endpoint(
        &mut self,
        spec: &ConnSpec,
        sess_out: &TlsSession,
        sess_in: &TlsSession,
        tls_f_out: &FrameIndex,
        tls_f_in: &FrameIndex,
        nvme_f_out: &FrameIndex,
        nvme_f_in: &FrameIndex,
    ) -> BuiltEndpoint {
        let mode = self.cfg.mode;
        let modeled = mode == DataMode::Modeled;
        let nm = |f: &FrameIndex| nmode(modeled, f);
        match spec {
            ConnSpec::Raw => BuiltEndpoint {
                proto: Proto::Raw,
                tx_factory: None,
                rx_factory: None,
            },
            ConnSpec::Tls(t) => {
                let tx = KtlsTx::with_frames(
                    sess_out.clone(),
                    KtlsTxConfig {
                        offload: t.tx_offload,
                        zerocopy: t.zerocopy,
                        mode,
                    },
                    tls_f_out.clone(),
                );
                let rx = KtlsRx::new(sess_in.clone(), mode, modeled.then(|| tls_f_in.clone()));
                let tx_factory = t.tx_offload.then(|| {
                    let (sess, fi) = (sess_out.clone(), tls_f_out.clone());
                    Rc::new(move || {
                        TxEngine::new(Box::new(TlsTxFlow::new(sess.clone(), fmode(modeled, &fi))), 0, 0)
                    }) as TxFactory
                });
                let rx_factory = t.rx_offload.then(|| {
                    let (sess, fi) = (sess_in.clone(), tls_f_in.clone());
                    Rc::new(move |at: Option<u64>| {
                        mk_rx(Box::new(TlsRxFlow::new(sess.clone(), fmode(modeled, &fi))), at)
                    }) as RxFactory
                });
                BuiltEndpoint {
                    proto: Proto::Tls { tx, rx },
                    tx_factory,
                    rx_factory,
                }
            }
            ConnSpec::NvmeHost(n) => {
                let rr = RrMap::new();
                let host = NvmeTcpHost::with_frames(
                    NvmeHostConfig {
                        mode,
                        copy_offload: n.copy_offload,
                        crc_offload: n.crc_offload,
                    },
                    rr.clone(),
                    PduParser::new(nm(nvme_f_in)),
                    nvme_f_out.clone(),
                );
                let tx_factory = n.crc_tx_offload.then(|| {
                    let fi = nvme_f_out.clone();
                    Rc::new(move || {
                        TxEngine::new(Box::new(NvmeTxFlow::new(nmode(modeled, &fi))), 0, 0)
                    }) as TxFactory
                });
                let rx_factory = (n.copy_offload || n.crc_offload).then(|| {
                    let (fi, rr, copy) = (nvme_f_in.clone(), rr.clone(), n.copy_offload);
                    Rc::new(move |at: Option<u64>| {
                        mk_rx(
                            Box::new(NvmeRxFlow::new(nmode(modeled, &fi), rr.clone(), copy)),
                            at,
                        )
                    }) as RxFactory
                });
                BuiltEndpoint {
                    proto: Proto::NvmeHost { host },
                    tx_factory,
                    rx_factory,
                }
            }
            ConnSpec::NvmeTarget(t) => {
                let device = BlockDevice::new(BlockDeviceConfig {
                    mode,
                    ..t.device
                });
                let target = NvmeTcpTarget::with_frames(
                    NvmeTargetConfig {
                        mode,
                        crc_tx_offload: t.crc_tx_offload,
                        crc_rx_offload: t.crc_rx_offload,
                        max_data_pdu: t.max_data_pdu,
                    },
                    device,
                    PduParser::new(nm(nvme_f_in)),
                    nvme_f_out.clone(),
                );
                let tx_factory = t.crc_tx_offload.then(|| {
                    let fi = nvme_f_out.clone();
                    Rc::new(move || {
                        TxEngine::new(Box::new(NvmeTxFlow::new(nmode(modeled, &fi))), 0, 0)
                    }) as TxFactory
                });
                let rx_factory = t.crc_rx_offload.then(|| {
                    let fi = nvme_f_in.clone();
                    Rc::new(move |at: Option<u64>| {
                        mk_rx(
                            Box::new(NvmeRxFlow::new(nmode(modeled, &fi), RrMap::new(), false)),
                            at,
                        )
                    }) as RxFactory
                });
                BuiltEndpoint {
                    proto: Proto::NvmeTarget {
                        target,
                        pending: BTreeMap::new(),
                        next_token: 0,
                    },
                    tx_factory,
                    rx_factory,
                }
            }
            ConnSpec::NvmeTlsHost(n, t) => {
                let rr = RrMap::new();
                let tls_tx = KtlsTx::with_frames(
                    sess_out.clone(),
                    KtlsTxConfig {
                        offload: t.tx_offload,
                        zerocopy: t.zerocopy,
                        mode,
                    },
                    tls_f_out.clone(),
                );
                let tls_rx = KtlsRx::new(sess_in.clone(), mode, modeled.then(|| tls_f_in.clone()));
                let host = NvmeTcpHost::with_frames(
                    NvmeHostConfig {
                        mode,
                        copy_offload: n.copy_offload,
                        crc_offload: n.crc_offload,
                    },
                    rr.clone(),
                    PduParser::new(nm(nvme_f_in)),
                    nvme_f_out.clone(),
                );
                let inner: Rc<RefCell<InnerTxShared>> = Rc::new(RefCell::new(InnerTxShared::default()));
                let tx_factory = t.tx_offload.then(|| {
                    let (sess, tfi, nfi) = (sess_out.clone(), tls_f_out.clone(), nvme_f_out.clone());
                    let (inner, crc_tx) = (Rc::clone(&inner), n.crc_tx_offload);
                    Rc::new(move || {
                        let mut flow = TlsTxFlow::new(sess.clone(), fmode(modeled, &tfi));
                        if crc_tx {
                            flow = flow.with_inner(
                                TxEngine::new(Box::new(NvmeTxFlow::new(nmode(modeled, &nfi))), 0, 0),
                                Rc::clone(&inner) as Rc<RefCell<dyn L5TxSource>>,
                            );
                        }
                        TxEngine::new(Box::new(flow), 0, 0)
                    }) as TxFactory
                });
                let rx_factory = t.rx_offload.then(|| {
                    let (sess, tfi, nfi) = (sess_in.clone(), tls_f_in.clone(), nvme_f_in.clone());
                    let (rr, copy, crc) = (rr.clone(), n.copy_offload, n.crc_offload);
                    Rc::new(move |at: Option<u64>| {
                        let mut flow = TlsRxFlow::new(sess.clone(), fmode(modeled, &tfi));
                        if copy || crc {
                            flow = flow.with_inner(RxEngine::new(
                                Box::new(NvmeRxFlow::new(nmode(modeled, &nfi), rr.clone(), copy)),
                                0,
                                0,
                            ));
                        }
                        mk_rx(Box::new(flow), at)
                    }) as RxFactory
                });
                BuiltEndpoint {
                    proto: Proto::NvmeTlsHost {
                        tls_tx,
                        tls_rx,
                        host,
                        inner,
                    },
                    tx_factory,
                    rx_factory,
                }
            }
            ConnSpec::NvmeTlsTarget(tg, t) => {
                let device = BlockDevice::new(BlockDeviceConfig {
                    mode,
                    ..tg.device
                });
                let tls_tx = KtlsTx::with_frames(
                    sess_out.clone(),
                    KtlsTxConfig {
                        offload: t.tx_offload,
                        zerocopy: t.zerocopy,
                        mode,
                    },
                    tls_f_out.clone(),
                );
                let tls_rx = KtlsRx::new(sess_in.clone(), mode, modeled.then(|| tls_f_in.clone()));
                let target = NvmeTcpTarget::with_frames(
                    NvmeTargetConfig {
                        mode,
                        crc_tx_offload: tg.crc_tx_offload,
                        crc_rx_offload: tg.crc_rx_offload,
                        max_data_pdu: tg.max_data_pdu,
                    },
                    device,
                    PduParser::new(nm(nvme_f_in)),
                    nvme_f_out.clone(),
                );
                let inner: Rc<RefCell<InnerTxShared>> = Rc::new(RefCell::new(InnerTxShared::default()));
                let tx_factory = t.tx_offload.then(|| {
                    let (sess, tfi, nfi) = (sess_out.clone(), tls_f_out.clone(), nvme_f_out.clone());
                    let (inner, crc_tx) = (Rc::clone(&inner), tg.crc_tx_offload);
                    Rc::new(move || {
                        let mut flow = TlsTxFlow::new(sess.clone(), fmode(modeled, &tfi));
                        if crc_tx {
                            flow = flow.with_inner(
                                TxEngine::new(Box::new(NvmeTxFlow::new(nmode(modeled, &nfi))), 0, 0),
                                Rc::clone(&inner) as Rc<RefCell<dyn L5TxSource>>,
                            );
                        }
                        TxEngine::new(Box::new(flow), 0, 0)
                    }) as TxFactory
                });
                let rx_factory = t.rx_offload.then(|| {
                    let (sess, tfi, nfi) = (sess_in.clone(), tls_f_in.clone(), nvme_f_in.clone());
                    let crc_rx = tg.crc_rx_offload;
                    Rc::new(move |at: Option<u64>| {
                        let mut flow = TlsRxFlow::new(sess.clone(), fmode(modeled, &tfi));
                        if crc_rx {
                            flow = flow.with_inner(RxEngine::new(
                                Box::new(NvmeRxFlow::new(nmode(modeled, &nfi), RrMap::new(), false)),
                                0,
                                0,
                            ));
                        }
                        mk_rx(Box::new(flow), at)
                    }) as RxFactory
                });
                BuiltEndpoint {
                    proto: Proto::NvmeTlsTarget {
                        tls_tx,
                        tls_rx,
                        target,
                        pending: BTreeMap::new(),
                        next_token: 0,
                        inner,
                    },
                    tx_factory,
                    rx_factory,
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Accessors for experiments.

    /// Total busy cycles on a host.
    pub fn cpu_busy_cycles(&self, host: usize) -> u64 {
        self.hosts[host].cpu.total_busy_cycles()
    }

    /// Snapshot of per-core busy cycles (windowed utilization).
    pub fn cpu_snapshot(&self, host: usize) -> Vec<u64> {
        self.hosts[host].cpu.snapshot()
    }

    /// Average busy cores over a window started at `snapshot`.
    pub fn busy_cores_since(&self, host: usize, snapshot: &[u64], window: SimDuration) -> f64 {
        self.hosts[host].cpu.busy_cores_since(snapshot, window)
    }

    /// NIC counters for a host.
    pub fn nic_counters(&self, host: usize) -> ano_core::nic::NicCounters {
        self.hosts[host].nic.counters()
    }

    /// The core `conn` currently runs on at `host` (moves when the
    /// rebalancer migrates the connection).
    pub fn conn_core(&self, host: usize, conn: ConnId) -> Option<usize> {
        self.hosts[host].conns.get(&conn).map(|c| c.core)
    }

    /// The NIC rx queue `conn`'s incoming flow last landed on at `host`.
    pub fn rx_queue_of(&self, host: usize, conn: ConnId) -> Option<u16> {
        let c = self.hosts[host].conns.get(&conn)?;
        Some(self.hosts[host].nic.rx_queue_of(c.in_flow))
    }

    /// The synthetic 4-tuple `conn`'s incoming flow is RSS-hashed by at
    /// `host` (`None` on single-queue hosts). Tests recompute the
    /// Toeplitz bucket from this to cross-check the NIC's steering.
    pub fn rx_tuple(&self, host: usize, conn: ConnId) -> Option<FourTuple> {
        self.hosts[host].conns.get(&conn)?.rx_tuple
    }

    /// Per-queue received-packet counters of a host's NIC.
    pub fn queue_rx_pkts(&self, host: usize) -> &[u64] {
        self.hosts[host].nic.queue_rx_pkts()
    }

    /// Max-over-mean packet load across a host's NIC rx queues.
    pub fn queue_imbalance(&self, host: usize) -> f64 {
        self.hosts[host].nic.queue_imbalance()
    }

    /// Flow→core migrations the rebalancer performed on `host`.
    pub fn migrations(&self, host: usize) -> u64 {
        self.hosts[host].migrations
    }

    /// The RSS indirection table of a host's NIC (`bucket → queue`).
    pub fn rss_table(&self, host: usize) -> &[u16] {
        self.hosts[host].nic.rss_table()
    }

    /// Replaces the RSS indirection table of a host's NIC — the software
    /// knob tests use to induce (or cure) queue imbalance. Flows already
    /// hashed to a remapped bucket cross queues on their next packet,
    /// with the context-thrash cost that implies.
    pub fn set_rss_table(&mut self, host: usize, table: Vec<u16>) {
        self.hosts[host].nic.set_rss_table(table);
    }

    /// Reprograms one RSS indirection bucket on a host's NIC. Returns
    /// `false` (no change) for an out-of-range queue or a no-op remap.
    pub fn set_rss_bucket(&mut self, host: usize, bucket: usize, queue: u16) -> bool {
        self.hosts[host].nic.set_rss_bucket(bucket, queue)
    }

    /// Receive-engine stats for a connection's incoming flow at `host`.
    pub fn rx_engine_stats(&self, host: usize, conn: ConnId) -> Option<ano_core::rx::RxStats> {
        let c = self.hosts[host].conns.get(&conn)?;
        self.hosts[host].nic.rx_stats(c.in_flow)
    }

    /// Current receive-engine state (Fig. 7 node) for a connection's
    /// incoming flow at `host`, or `None` without an rx engine. Invariant
    /// checkers use this to assert the engine reconverges to `Offloading`
    /// once impairments end.
    pub fn rx_engine_state(&self, host: usize, conn: ConnId) -> Option<ano_core::rx::RxStateKind> {
        let c = self.hosts[host].conns.get(&conn)?;
        self.hosts[host]
            .nic
            .rx_engine(c.in_flow)
            .map(|e| e.state_kind())
    }

    /// The `(out_flow, in_flow)` labels of `conn` at `host` — the flow ids
    /// trace records carry, for filtering a shared trace down to one
    /// direction of one connection.
    pub fn flow_ids(&self, host: usize, conn: ConnId) -> Option<(u64, u64)> {
        let c = self.hosts[host].conns.get(&conn)?;
        Some((c.out_flow.0, c.in_flow.0))
    }

    /// Transmit-engine stats for a connection's outgoing flow at `host`.
    pub fn tx_engine_stats(&self, host: usize, conn: ConnId) -> Option<ano_core::tx::TxStats> {
        let c = self.hosts[host].conns.get(&conn)?;
        self.hosts[host].nic.tx_stats(c.out_flow)
    }

    /// Application bytes delivered in order on `conn` at `host`.
    pub fn delivered_bytes(&self, host: usize, conn: ConnId) -> u64 {
        self.hosts[host]
            .conns
            .get(&conn)
            .map(|c| c.delivered)
            .unwrap_or(0)
    }

    /// kTLS receive stats (record classification, Fig. 17b/18b).
    pub fn ktls_rx_stats(&self, host: usize, conn: ConnId) -> Option<ano_tls::ktls::KtlsRxStats> {
        match &self.hosts[host].conns.get(&conn)?.proto {
            Proto::Tls { rx, .. } => Some(rx.stats()),
            Proto::NvmeTlsHost { tls_rx, .. } | Proto::NvmeTlsTarget { tls_rx, .. } => {
                Some(tls_rx.stats())
            }
            _ => None,
        }
    }

    /// NVMe host stats for an initiator connection.
    pub fn nvme_host_stats(&self, host: usize, conn: ConnId) -> Option<ano_nvme::host::NvmeHostStats> {
        match &self.hosts[host].conns.get(&conn)?.proto {
            Proto::NvmeHost { host: h } => Some(h.stats()),
            Proto::NvmeTlsHost { host: h, .. } => Some(h.stats()),
            _ => None,
        }
    }

    /// TCP transmit stats.
    pub fn tcp_tx_stats(&self, host: usize, conn: ConnId) -> Option<ano_tcp::sender::SenderStats> {
        self.hosts[host].conns.get(&conn).map(|c| c.tcp.tx_stats())
    }

    /// Façade link statistics (`true`: host0 → host1).
    pub fn link_stats(&self, dir0to1: bool) -> ano_sim::link::LinkStats {
        let (src, dst) = if dir0to1 { (0, 1) } else { (1, 0) };
        self.link_stats_between(src, dst)
    }

    /// Statistics of the `src → dst` link.
    ///
    /// # Panics
    ///
    /// Panics if the pair has no link.
    pub fn link_stats_between(&self, src: u16, dst: u16) -> ano_sim::link::LinkStats {
        self.links
            .between(src, dst)
            .unwrap_or_else(|| panic!("no link {src} -> {dst}"))
            .stats()
    }

    /// Why `conn`'s circuit breaker opened at `host`, or `None` while it
    /// is closed (offloads may be installed).
    pub fn breaker_reason(&self, host: usize, conn: ConnId) -> Option<&'static str> {
        self.hosts[host].conns.get(&conn)?.health.breaker_open
    }

    /// Payload packets `conn` processed at `host` with its breaker open
    /// (degraded-mode metering).
    pub fn degraded_pkts(&self, host: usize, conn: ConnId) -> u64 {
        self.hosts[host]
            .conns
            .get(&conn)
            .map(|c| c.health.degraded_pkts)
            .unwrap_or(0)
    }

    /// How many operations a host's device-fault script acted on (the
    /// injection oracle: chaos tests assert their schedule actually fired).
    pub fn device_faults_injected(&self, host: usize) -> u64 {
        self.hosts[host].faults.injected()
    }

    /// Sets the NVMe copy-cost working-set hint for a host connection
    /// (drives Fig. 10's LLC cliff).
    pub fn set_nvme_working_set(&mut self, host: usize, conn: ConnId, ws: u64) {
        if let Some(c) = self.hosts[host].conns.get_mut(&conn) {
            match &mut c.proto {
                Proto::NvmeHost { host: h } => h.working_set = ws,
                Proto::NvmeTlsHost { host: h, .. } => h.working_set = ws,
                _ => {}
            }
        }
    }
}

struct BuiltEndpoint {
    proto: Proto,
    /// Factory for this endpoint's outgoing flow's engine (installed on
    /// its own NIC; re-invoked after device resets).
    tx_factory: Option<TxFactory>,
    /// Factory for this endpoint's *incoming* flow's engine.
    rx_factory: Option<RxFactory>,
}

/// Hands flow-scoped tracer clones to the endpoint's L5P receive layers
/// (`in_flow` is the flow whose bytes they consume). Transmit layers trace
/// through the TCP sender and tx engine, which are scoped elsewhere.
fn attach_proto_tracer(proto: &mut Proto, tracer: &ano_trace::Tracer, in_flow: FlowId) {
    match proto {
        Proto::Raw | Proto::NvmeTarget { .. } => {}
        Proto::Tls { rx, .. } => rx.set_tracer(tracer.scoped(in_flow.0)),
        Proto::NvmeHost { host } => host.set_tracer(tracer.scoped(in_flow.0)),
        Proto::NvmeTlsHost { tls_rx, host, .. } => {
            tls_rx.set_tracer(tracer.scoped(in_flow.0));
            host.set_tracer(tracer.scoped(in_flow.0));
        }
        Proto::NvmeTlsTarget { tls_rx, .. } => tls_rx.set_tracer(tracer.scoped(in_flow.0)),
    }
}

fn check_pairing(a: &ConnSpec, b: &ConnSpec) {
    let ok = matches!(
        (a, b),
        (ConnSpec::Raw, ConnSpec::Raw)
            | (ConnSpec::Tls(_), ConnSpec::Tls(_))
            | (ConnSpec::NvmeHost(_), ConnSpec::NvmeTarget(_))
            | (ConnSpec::NvmeTarget(_), ConnSpec::NvmeHost(_))
            | (ConnSpec::NvmeTlsHost(..), ConnSpec::NvmeTlsTarget(..))
            | (ConnSpec::NvmeTlsTarget(..), ConnSpec::NvmeTlsHost(..))
    );
    assert!(ok, "incompatible connection specs");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retain_buf_ranges_and_prune() {
        let mut r = RetainBuf::default();
        r.push(Payload::real(vec![1, 2, 3]));
        r.push(Payload::real(vec![4, 5]));
        assert_eq!(r.end(), 5);
        assert_eq!(r.range(1, 4).unwrap().to_vec(), vec![2, 3, 4]);
        assert!(r.range(0, 6).is_none(), "beyond end");
        r.prune(3);
        assert!(r.range(0, 2).is_none(), "pruned below");
        assert_eq!(r.range(3, 5).unwrap().to_vec(), vec![4, 5]);
    }

    #[test]
    fn inner_tx_shared_resolves_messages() {
        let mut s = InnerTxShared::default();
        s.push_capsule(&Payload::real(vec![0u8; 100]));
        s.push_capsule(&Payload::real(vec![1u8; 50]));
        let m = s.msg_at(120).expect("second capsule");
        assert_eq!((m.msg_start, m.msg_index), (100, 1));
        assert!(s.msg_at(150).is_none(), "past the stream end");
        assert_eq!(s.stream_bytes(100, 110).to_vec(), vec![1u8; 10]);
        s.prune(100);
        assert!(s.msg_at(10).is_none(), "acked capsule released");
        // Pruned ranges degrade to synthetic (modeled-safe) bytes.
        assert_eq!(s.stream_bytes(0, 10).len(), 10);
    }

    #[test]
    fn connect_rejects_mismatched_specs() {
        let result = std::panic::catch_unwind(|| {
            let mut w = World::new(WorldConfig::default());
            w.connect(ConnSpec::Raw, ConnSpec::Tls(TlsSpec::default()));
        });
        assert!(result.is_err());
    }

    #[test]
    fn engines_installed_per_spec() {
        let mut w = World::new(WorldConfig::default());
        let offl = w.connect(
            ConnSpec::Tls(TlsSpec::offloaded_zc()),
            ConnSpec::Tls(TlsSpec::offloaded_zc()),
        );
        let sw = w.connect(ConnSpec::Tls(TlsSpec::default()), ConnSpec::Tls(TlsSpec::default()));
        assert!(w.rx_engine_stats(1, offl).is_some(), "rx engine installed");
        assert!(w.tx_engine_stats(0, offl).is_some(), "tx engine installed");
        assert!(w.rx_engine_stats(1, sw).is_none(), "software-only: no engines");
        assert!(w.tx_engine_stats(0, sw).is_none());
    }
}
