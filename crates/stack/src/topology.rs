//! Fleet topologies: N client hosts × M server hosts, fully meshed with
//! per-pair links.
//!
//! The paper's context-cache results (§6.5) only appear at scale: one
//! server NIC whose bounded LRU cache serves far more flows than it can
//! hold. [`Fleet`] is the turmoil-style builder for that shape — it lays
//! out client hosts `0..N`, server hosts `N..N+M`, registers both directed
//! links for every client↔server pair, and hands out host indices so
//! experiments can aim connections, impairments, and device-fault plans at
//! arbitrary subsets of the fleet. Everything else — install ladders,
//! breakers, resync, tracing — is the same [`World`] machinery the
//! two-host façade uses.

use ano_sim::link::{Impairments, Script};

use crate::world::{ConnId, ConnSpec, HostSpec, World, WorldConfig};

/// Fleet construction parameters.
#[derive(Clone, Debug)]
pub struct FleetSpec {
    /// Number of client hosts (world hosts `0..clients`).
    pub clients: usize,
    /// Number of server hosts (world hosts `clients..clients+servers`).
    pub servers: usize,
    /// Hardware of every client host.
    pub client: HostSpec,
    /// Hardware of every server host (typically the interesting NIC:
    /// a small `ctx_cache_capacity` makes the cache the bottleneck).
    pub server: HostSpec,
    /// Seed, cost model, payload mode, TCP tunables, link rate/delay and
    /// the degradation policy. The façade-only fields (`cores`, `nic`,
    /// `impair_*`) are ignored.
    pub cfg: WorldConfig,
    /// Per-directed-pair impairment overrides, applied once the mesh is
    /// wired: `((src_host, dst_host), impairments)`. Host indices are
    /// world indices (clients `0..N`, servers `N..N+M`); pairs not listed
    /// stay pristine. This is the PR-2 scripted-adversity machinery aimed
    /// at fleet subsets — one lossy client, one scripted server uplink —
    /// instead of the façade's two fixed directions.
    pub impair: Vec<((u16, u16), Impairments)>,
    /// Per-directed-pair scripted schedules, installed after `impair`
    /// (keeping that pair's probabilistic knobs).
    pub scripts: Vec<((u16, u16), Script)>,
}

impl Default for FleetSpec {
    fn default() -> Self {
        FleetSpec {
            clients: 2,
            servers: 1,
            client: HostSpec::default(),
            server: HostSpec::default(),
            cfg: WorldConfig::default(),
            impair: Vec::new(),
            scripts: Vec::new(),
        }
    }
}

/// A built fleet: the [`World`] plus the client/server host layout.
pub struct Fleet {
    world: World,
    clients: usize,
    servers: usize,
}

impl Fleet {
    /// Builds the fleet world and wires both directions of every
    /// client↔server pair (no client↔client or server↔server links:
    /// the workloads this models are strictly request/response).
    ///
    /// # Panics
    ///
    /// Panics when either side is empty.
    pub fn build(spec: FleetSpec) -> Fleet {
        assert!(spec.clients > 0 && spec.servers > 0, "fleet needs clients and servers");
        let mut hosts = Vec::with_capacity(spec.clients + spec.servers);
        hosts.extend(std::iter::repeat_n(spec.client.clone(), spec.clients));
        hosts.extend(std::iter::repeat_n(spec.server.clone(), spec.servers));
        let mut world = World::with_topology(spec.cfg, hosts);
        for ci in 0..spec.clients {
            for sj in 0..spec.servers {
                let c = ci as u16;
                let s = (spec.clients + sj) as u16;
                world.add_link(c, s, Impairments::none());
                world.add_link(s, c, Impairments::none());
            }
        }
        // Per-pair adversity, applied after the mesh exists so unwired
        // pairs panic loudly instead of being silently ignored.
        for ((src, dst), imp) in &spec.impair {
            world.set_impairments_between(*src, *dst, imp.clone());
        }
        for ((src, dst), script) in &spec.scripts {
            world.set_script_between(*src, *dst, script.clone());
        }
        Fleet {
            world,
            clients: spec.clients,
            servers: spec.servers,
        }
    }

    /// World host index of client `i`.
    pub fn client(&self, i: usize) -> usize {
        assert!(i < self.clients, "client index out of range");
        i
    }

    /// World host index of server `j`.
    pub fn server(&self, j: usize) -> usize {
        assert!(j < self.servers, "server index out of range");
        self.clients + j
    }

    /// Connects client `i` to server `j` with the given endpoint specs.
    pub fn connect(
        &mut self,
        client: usize,
        server: usize,
        client_spec: ConnSpec,
        server_spec: ConnSpec,
    ) -> ConnId {
        let c = self.client(client) as u16;
        let s = self.server(server) as u16;
        self.world.connect_pair(c, s, client_spec, server_spec)
    }

    /// The underlying world.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable access to the underlying world.
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }
}

impl std::ops::Deref for Fleet {
    type Target = World;

    fn deref(&self) -> &World {
        &self.world
    }
}

impl std::ops::DerefMut for Fleet {
    fn deref_mut(&mut self) -> &mut World {
        &mut self.world
    }
}

#[cfg(test)]
mod tests {
    use ano_sim::payload::Payload;
    use ano_sim::time::SimTime;

    use super::*;
    use crate::app::{AppEvent, HostApi, HostApp};
    use crate::world::TlsSpec;

    fn small() -> FleetSpec {
        FleetSpec {
            clients: 3,
            servers: 2,
            ..FleetSpec::default()
        }
    }

    #[test]
    fn fleet_lays_out_hosts_and_links() {
        let fleet = Fleet::build(small());
        assert_eq!(fleet.num_hosts(), 5);
        assert_eq!(fleet.client(2), 2);
        assert_eq!(fleet.server(0), 3);
        assert_eq!(fleet.server(1), 4);
        // 3 clients × 2 servers × 2 directions.
        for ci in 0..3u16 {
            for sj in 3..5u16 {
                assert!(fleet.world().link_stats_between(ci, sj).offered == 0);
                assert!(fleet.world().link_stats_between(sj, ci).offered == 0);
            }
        }
    }

    #[test]
    fn fleet_connects_engines_on_the_right_hosts() {
        let mut fleet = Fleet::build(small());
        let spec = TlsSpec {
            rx_offload: true,
            ..TlsSpec::default()
        };
        let conn = fleet.connect(1, 0, ConnSpec::Tls(TlsSpec::default()), ConnSpec::Tls(spec));
        let server = fleet.server(0);
        assert_eq!(fleet.conn_endpoints(conn), Some((1, server as u16)));
        assert!(fleet.rx_engine_stats(server, conn).is_some(), "server rx engine");
        assert!(fleet.tx_engine_stats(1, conn).is_none(), "client tx software");
        // Disconnect retires the id and destroys the contexts.
        fleet.world_mut().disconnect(conn);
        assert_eq!(fleet.conn_endpoints(conn), None);
        assert!(fleet.rx_engine_stats(server, conn).is_none());
    }

    struct Blaster {
        conn: ConnId,
    }

    impl HostApp for Blaster {
        fn on_event(&mut self, api: &mut HostApi, event: AppEvent<'_>) {
            if let AppEvent::Start = event {
                api.send(self.conn, Payload::real(vec![0xAB; 32 * 1024]));
            }
        }
    }

    #[test]
    fn fleet_applies_per_pair_adversity() {
        let mut spec = small();
        // Drown client 1's uplink; every other pair stays pristine.
        spec.impair.push((
            (1, 3),
            Impairments {
                loss: 1.0,
                ..Impairments::none()
            },
        ));
        let mut fleet = Fleet::build(spec);
        let conn = fleet.connect(1, 0, ConnSpec::Raw, ConnSpec::Raw);
        fleet.world_mut().set_app(1, Box::new(Blaster { conn }));
        fleet.world_mut().start();
        fleet.world_mut().run_until(SimTime::from_millis(50));
        let dark = fleet.world().link_stats_between(1, 3);
        assert!(dark.offered > 0, "sender kept trying");
        assert_eq!(dark.lost, dark.offered, "uplink drowned every frame");
        assert_eq!(fleet.world().delivered_bytes(fleet.server(0), conn), 0);
        assert_eq!(
            fleet.world().link_stats_between(0, 3).offered,
            0,
            "untargeted pairs untouched"
        );
    }

    #[test]
    #[should_panic(expected = "no link")]
    fn per_pair_scripts_reject_unwired_pairs() {
        let mut spec = small();
        // Client↔client is never meshed; a script aimed there is a bug.
        spec.scripts.push(((0, 1), Script::drop_nth(0)));
        Fleet::build(spec);
    }

    #[test]
    #[should_panic]
    fn unwired_pairs_cannot_connect() {
        let mut fleet = Fleet::build(small());
        // Client↔client has no link; connect_pair must refuse.
        fleet
            .world_mut()
            .connect_pair(0, 1, ConnSpec::Raw, ConnSpec::Raw);
    }
}
