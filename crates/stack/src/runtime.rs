//! Event dispatch: the world's packet, timer, resync and application paths.

use ano_core::fault::{DeviceOp, FaultAction, ScheduledFault};
use ano_core::flow::{L5TxSource, TxMsgRef};
use ano_core::msg::EngineEvent;
use ano_nvme::parser::StreamChunk;
use ano_sim::payload::Payload;
use ano_sim::time::SimTime;
use ano_tcp::segment::{RxChunk, WIRE_HEADER_BYTES};
use ano_tls::ktls::PlainChunk;
use ano_tls::record::OVERHEAD as TLS_OVERHEAD;

use crate::app::{Action, AppEvent, HostApi};
use crate::world::{ConnId, Event, HostState, Proto, World};

/// Send-queue low watermark: a `Writable` notification fires when a
/// connection that sent data drains below this.
const LOW_WATER: u64 = 512 << 10;

/// Upper bound on events drained per scheduler burst. Purely a memory bound
/// on the reusable batch buffer: a same-instant group larger than this is
/// delivered across successive bursts in unchanged FIFO order.
const MAX_BURST: usize = 64;

/// Deferred application notifications collected while host state is borrowed.
pub(crate) enum AppCall {
    Data { conn: ConnId, plains: Vec<PlainChunk> },
    NvmeDone {
        conn: ConnId,
        completions: Vec<ano_nvme::host::Completion>,
    },
    Writable { conn: ConnId },
}

/// Transmit-side recovery adapter: `l5o_get_tx_msgstate` resolves through
/// the L5P's record map, byte replay through TCP's retransmit buffer.
struct TxAdapter<'a> {
    proto: &'a Proto,
    tcp: &'a ano_tcp::sender::TcpSender,
}

impl L5TxSource for TxAdapter<'_> {
    fn msg_at(&self, off: u64) -> Option<TxMsgRef> {
        match self.proto {
            Proto::Raw => None,
            Proto::Tls { tx, .. } => tx.record_at(off),
            Proto::NvmeHost { host } => host.record_at(off),
            Proto::NvmeTarget { target, .. } => target.record_at(off),
            Proto::NvmeTlsHost { tls_tx, .. } => tls_tx.record_at(off),
            Proto::NvmeTlsTarget { tls_tx, .. } => tls_tx.record_at(off),
        }
    }

    fn stream_bytes(&self, from: u64, to: u64) -> Payload {
        self.tcp.stream_range(from, to)
    }
}


impl World {
    /// Kicks off every host's application. Safe to call again after
    /// installing fresh apps mid-run (churn workloads start each wave of
    /// short-lived connections this way); hosts without an app are skipped.
    pub fn start(&mut self) {
        for h in 0..self.apps.len() {
            self.fire_app(h, |app, api| app.on_event(api, AppEvent::Start));
        }
    }

    /// Runs until the queue drains or `until` is reached.
    ///
    /// The loop is burst-processed: every pending event sharing the earliest
    /// timestamp (up to [`MAX_BURST`]) is drained from the scheduler in one
    /// call and dispatched as a vector. Dispatch order is identical to
    /// popping one event at a time — the batch only ever contains events
    /// that were already queued, and anything scheduled *while the batch is
    /// processed* sorts after it (higher insertion sequence, time clamped to
    /// ≥ now) — so batching changes wall-clock speed, never simulated
    /// behavior. [`World::run_until_single`] keeps the unbatched loop as the
    /// equivalence oracle.
    pub fn run_until(&mut self, until: SimTime) {
        let mut batch = std::mem::take(&mut self.batch);
        while let Some(t) = self.sched.pop_batch_until(until, MAX_BURST, &mut batch) {
            // One clock store per burst: the whole batch shares the
            // timestamp, so every record between two dispatches stays on the
            // same timestamp, ordered by record number — exactly as with
            // per-event stores.
            self.tracer.set_now(t.as_nanos());
            for ev in batch.drain(..) {
                self.dispatch(ev);
            }
        }
        self.batch = batch;
        self.note_clamps();
    }

    /// The unbatched reference loop: pops and dispatches one event at a
    /// time. Kept as the test oracle that burst processing preserves
    /// behavior — any divergence between this and [`World::run_until`] on
    /// the same seed is a determinism bug.
    pub fn run_until_single(&mut self, until: SimTime) {
        while let Some(t) = self.sched.peek_time() {
            if t > until {
                break;
            }
            let (_, ev) = self.sched.pop().expect("peeked");
            self.tracer.set_now(t.as_nanos());
            self.dispatch(ev);
        }
        self.note_clamps();
    }

    /// Surfaces scheduler clamps accumulated since the last call into the
    /// trace/metrics stream: a past-time event silently pulled to "now"
    /// should be visible, not invisible. Emitted once per `run_until` so
    /// batched and single-pop loops produce identical records.
    fn note_clamps(&mut self) {
        let clamped = self.sched.clamped();
        if clamped > self.clamps_traced {
            let count = clamped - self.clamps_traced;
            self.clamps_traced = clamped;
            self.tracer.count("sched.clamped", count);
            self.tracer.record(|| ano_trace::Event::SchedClamped { count });
        }
    }

    /// True when no events remain.
    pub fn is_idle(&self) -> bool {
        self.sched.is_empty()
    }

    /// Events dispatched so far.
    pub fn events_dispatched(&self) -> u64 {
        self.sched.dispatched()
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::Packet {
                host,
                conn,
                seq,
                seq64,
                ack,
                wnd,
                sack,
                payload,
            } => {
                self.handle_packet(host as usize, conn, seq, seq64, ack, wnd, sack, payload)
            }
            Event::Consume { host, conn, bytes } => {
                let h = host as usize;
                if let Some(c) = self.hosts[h].conns.get_mut(&conn) {
                    c.tcp.consume(bytes);
                }
                self.pump_conn(h, conn); // emits the window-update ACK
            }
            Event::Rto { host, conn, gen } => self.handle_rto(host as usize, conn, gen),
            Event::ResyncReq {
                host,
                conn,
                layer,
                tcpsn,
            } => self.handle_resync_req(host as usize, conn, layer, tcpsn),
            Event::ResyncResp {
                host,
                conn,
                layer,
                tcpsn,
                ok,
                idx,
                epoch,
            } => {
                let h = &mut self.hosts[host as usize];
                if let Some(c) = h.conns.get(&conn) {
                    h.nic.resync_response(c.in_flow, layer, tcpsn, ok, idx, epoch);
                }
            }
            Event::InstallRetry {
                host,
                conn,
                rx,
                attempt,
            } => self.try_install(host as usize, conn, rx, attempt),
            Event::DeviceFault { host, idx } => self.handle_device_fault(host as usize, idx),
            Event::NetStep { idx } => self.handle_net_step(idx),
            Event::TargetReply { host, conn, token } => {
                self.handle_target_reply(host as usize, conn, token)
            }
            Event::AppTimer { host, token } => {
                self.fire_app(host as usize, |app, api| {
                    app.on_event(api, AppEvent::Timer { token })
                });
            }
            Event::Rebalance { host } => self.handle_rebalance(host as usize),
        }
    }

    // ------------------------------------------------------------------
    // Flow→core rebalancing (oRSS).

    /// One rebalance-window tick on host `h`: compare per-core cycles
    /// consumed since the window opened; if the hottest core exceeds
    /// `trigger ×` the mean (and the noise floor), migrate its busiest
    /// connection to the idlest core. Migration alone keeps the NIC
    /// context alive — same device, same queue; with `steer_queues` the
    /// flow's RSS bucket is reprogrammed toward the destination core's
    /// queue, which evicts the rx context on the next packet (the miss
    /// then feeds the `cache_thrash` breaker accounting like any other).
    /// Re-arms for another window while traffic flowed; disarms otherwise
    /// so a drained world still reports idle.
    fn handle_rebalance(&mut self, h: usize) {
        let World {
            cfg,
            hosts,
            sched,
            tracer,
            ..
        } = &mut *self;
        let Some(rb) = cfg.rebalance.as_ref() else {
            return;
        };
        let host = &mut hosts[h];
        let now = sched.now();
        let n = host.cpu.num_cores();
        let deltas: Vec<u64> = (0..n)
            .map(|core| {
                let prev = host.rebalance_snapshot.get(core).copied().unwrap_or(0);
                host.cpu.busy_cycles_of(core).saturating_sub(prev)
            })
            .collect();
        let total: u64 = deltas.iter().sum();
        let had_traffic = host.conns.values().any(|c| c.pkts_in_window > 0);

        if n > 1 && total > 0 {
            // Deterministic argmax/argmin: ties go to the lowest index, so
            // a uniformly-loaded host picks hot == cold and does nothing.
            let hot = (0..n)
                .max_by_key(|&i| (deltas[i], std::cmp::Reverse(i)))
                .expect("n > 1");
            let cold = (0..n).min_by_key(|&i| (deltas[i], i)).expect("n > 1");
            let mean = total as f64 / n as f64;
            if hot != cold && deltas[hot] as f64 > rb.trigger * mean && deltas[hot] >= rb.min_cycles
            {
                for _ in 0..rb.max_moves {
                    // Hottest connection on the hot core by window packets
                    // (ties → lowest id). Moving the *only* active
                    // connection would shift the load, not spread it, so
                    // a one-flow core is left alone.
                    let mut active = 0usize;
                    let mut pick: Option<(ConnId, u64)> = None;
                    for (&cid, c) in host.conns.iter() {
                        if c.core == hot && c.pkts_in_window > 0 {
                            active += 1;
                            if pick.is_none_or(|(_, best)| c.pkts_in_window > best) {
                                pick = Some((cid, c.pkts_in_window));
                            }
                        }
                    }
                    let Some((cid, _)) = pick else { break };
                    if active < 2 {
                        break;
                    }
                    let c = host.conns.get_mut(&cid).expect("picked above");
                    c.core = cold;
                    c.pkts_in_window = 0;
                    // The destination core starts a fresh batch; the hot
                    // core's affinity slot is stale either way.
                    for slot in host.last_conn.iter_mut() {
                        if *slot == Some(cid) {
                            *slot = None;
                        }
                    }
                    host.migrations += 1;
                    tracer.count("stack.core_migrations", 1);
                    tracer.scoped(c.in_flow.0).record(|| ano_trace::Event::CoreMigrate {
                        from: hot as u64,
                        to: cold as u64,
                    });
                    if rb.steer_queues && host.nic.rx_queues() > 1 {
                        // Make interrupts follow the flow: remap its RSS
                        // bucket to a queue the destination core services.
                        // The queue crossing evicts the rx context (this
                        // is the expensive half of the trade).
                        let bucket = host.nic.rx_bucket_of(c.in_flow);
                        let dest_q = host.queue_core.iter().position(|&qc| qc == cold);
                        if let (Some(bucket), Some(q)) = (bucket, dest_q) {
                            host.nic.set_rss_bucket(bucket, q as u16);
                            host.nic.steer_tx(c.out_flow, q as u16);
                        }
                    }
                }
            }
        }

        for c in host.conns.values_mut() {
            c.pkts_in_window = 0;
        }
        if had_traffic {
            host.rebalance_snapshot = host.cpu.snapshot();
            sched.schedule(now + rb.interval, Event::Rebalance { host: h as u16 });
        } else {
            host.rebalance_armed = false;
        }
    }

    // ------------------------------------------------------------------
    // Packet receive path.

    // ano-lint: entry(hot-path)
    #[allow(clippy::too_many_arguments)]
    fn handle_packet(
        &mut self,
        h: usize,
        conn: ConnId,
        seq: u32,
        seq64: u64,
        ack: u32,
        wnd: u32,
        sack: Vec<(u32, u32)>,
        mut payload: Payload,
    ) {
        // Reusable buffers live on the World so the steady state allocates
        // nothing per packet.
        let mut app_calls = std::mem::take(&mut self.app_calls);
        let mut plains_pool = std::mem::take(&mut self.plains_pool);
        // Split-borrow: the hot config (`cost`, `degrade`) is a read-only
        // borrow alongside the mutable host/scheduler/tracer state — no
        // per-event clone (enforced by the hot-config-clone lint rule).
        let World {
            cfg,
            hosts,
            links,
            sched,
            tracer,
            ..
        } = &mut *self;
        let now = sched.now();
        let cost = &cfg.cost;
        let resync_delay = cfg.resync_delay;
        let degrade = &cfg.degrade;
        // ano-lint: allow(hot-alloc): capacity-0 resync mailbox; fills only when the NIC requests resync
        let mut resync_reqs: Vec<(u8, u64)> = Vec::new();
        // ano-lint: allow(hot-alloc): capacity-0 resync mailbox; fills only when the NIC requests resync
        let mut resync_resps: Vec<(u8, u64, bool, u64)> = Vec::new();
        // ano-lint: allow(hot-alloc): capacity-0 resync mailbox; fills only when the NIC requests resync
        let mut target_replies: Vec<(u64, SimTime)> = Vec::new();
        let mut open_reason: Option<&'static str> = None;

        let in_flow = {
            // ano-lint: allow(transitive-panic): host index is a dispatch-validated topology id
            let host = &mut hosts[h];
            let Some(c) = host.conns.get_mut(&conn) else {
                return;
            };
            // Chaos-aware breaker guard: while this connection's peer sits
            // behind a declared partition (group cuts sever both
            // directions, so the outgoing link's mode is authoritative),
            // stalls and resync noise are the chaos plan's doing, not the
            // device's — the breaker must not trip on them. Evaluated
            // lazily: only the rare would-open branches pay for it.
            let peer_dark = || links.by_id(c.link_out).is_partitioned();

            // Degraded-mode metering: payload packets on a breaker-open
            // connection run entirely in software.
            if c.health.breaker_open.is_some() && !payload.is_empty() {
                c.health.degraded_pkts += 1;
                tracer.count("stack.degraded_pkts", 1);
            }

            // Rebalancer bookkeeping: payload packets elect the hot flow,
            // and the first one of a window lazily arms the host's tick
            // (nothing is ever scheduled on an idle or rebalance-off host).
            if !payload.is_empty() {
                if let Some(rb) = cfg.rebalance.as_ref() {
                    c.pkts_in_window += 1;
                    if !host.rebalance_armed {
                        host.rebalance_armed = true;
                        host.rebalance_snapshot = host.cpu.snapshot();
                        sched.schedule(now + rb.interval, Event::Rebalance { host: h as u16 });
                    }
                }
            }

            // 1. NIC receive processing (offload engines).
            let rxp = {
                host.nic.rx_process(c.in_flow, seq64, &mut payload)
            };
            for ev in rxp.events {
                let EngineEvent::ResyncRequest { layer, tcpsn } = ev;
                resync_reqs.push((layer, tcpsn));
                // A flow that storms resync requests gains nothing from
                // offload: its context never stabilizes.
                if c.health.note_resync(now, degrade) && !peer_dark() {
                    open_reason = Some("resync_storm");
                }
            }
            if rxp.cache_miss && c.health.note_miss(now, degrade) && !peer_dark() {
                open_reason = open_reason.or(Some("cache_thrash"));
            }

            // 2. TCP + per-packet stack cost, plus the per-batch wakeup
            // cost when this core switches connections (batching model).
            // Pure ACKs ride the cheap path.
            let cycles = if payload.is_empty() {
                cost.per_ack
            } else {
                let mut cyc = per_pkt_rx_cost(&c.proto, cost);
                if rxp.flags != Default::default() {
                    cyc += cost.per_pkt_rx_offload_extra;
                }
                // ano-lint: allow(transitive-panic): core id is bounded by the per-host core table
                if host.last_conn[c.core] != Some(conn) {
                    // ano-lint: allow(transitive-panic): core id is bounded by the per-host core table
                    host.last_conn[c.core] = Some(conn);
                    cyc += cost.per_wakeup;
                }
                cyc
            };
            let mut done = host.cpu.run(c.core, now, cycles);
            {
                c.tcp.on_packet_wnd(seq, ack, wnd, &sack, payload, rxp.flags, now);
            }

            // 3. Release transmit-side L5P state below the cumulative ack.
            let acked = c.tcp.sender().snd_una();
            release_proto(&mut c.proto, acked);

            // 4. Deliver in-order chunks to the L5P layers. The drained
            // buffer goes back to the receiver afterwards so the steady
            // state reuses one allocation per connection.
            if c.tcp.has_ready() {
                let mut chunks = c.tcp.take_ready();
                let consumed: u64 = chunks.iter().map(|ch| ch.payload.len() as u64).sum();
                let proto_cycles = proto_rx(
                    c,
                    &mut chunks,
                    cost,
                    now,
                    conn,
                    &mut resync_resps,
                    &mut target_replies,
                    &mut app_calls,
                    &mut plains_pool,
                );
                c.tcp.recycle_ready(chunks);
                done = host.cpu.run(c.core, now, proto_cycles);
                // The window reopens when the CPU actually finishes the
                // protocol work for these bytes.
                sched.schedule(
                    done,
                    Event::Consume {
                        host: h as u16,
                        conn,
                        bytes: consumed,
                    },
                );
            } else {
                // Still poll resync responses (requests may have matured).
                poll_resyncs(&mut c.proto, &mut resync_resps);
                let _ = done;
            }

            // 5. Writable notification.
            if c.blocked && c.tcp.unsent_bytes() < LOW_WATER {
                c.blocked = false;
                app_calls.push(AppCall::Writable { conn });
            }
            c.in_flow.0
        };

        if let Some(reason) = open_reason {
            // The breaker uninstalls the engines; their in-flight resync
            // requests die with them.
            self.open_breaker(h, conn, reason);
            resync_reqs.clear();
        }
        for (layer, tcpsn) in resync_reqs {
            // The NIC→driver request crosses the device mailbox, which the
            // fault script can lose or slow down.
            // ano-lint: allow(transitive-panic): host index is a dispatch-validated topology id
            let extra = match self.hosts[h].faults.on_op(DeviceOp::ResyncReq, now) {
                Some(FaultAction::Fail | FaultAction::Drop) => {
                    self.tracer
                        .scoped(in_flow)
                        .record(|| ano_trace::Event::DeviceFault { kind: "resync_req" });
                    continue;
                }
                Some(FaultAction::Delay(d)) => d,
                None => ano_sim::time::SimDuration::from_nanos(0),
            };
            self.sched.schedule(
                now + resync_delay + extra,
                Event::ResyncReq {
                    host: h as u16,
                    conn,
                    layer,
                    tcpsn,
                },
            );
        }
        // Responses carry the epoch they were issued under so answers that
        // race a reset are discarded rather than resurrecting dead contexts.
        // ano-lint: allow(transitive-panic): host index is a dispatch-validated topology id
        let epoch = self.hosts[h].nic.epoch();
        for (layer, tcpsn, ok, idx) in resync_resps {
            // ano-lint: allow(transitive-panic): host index is a dispatch-validated topology id
            let extra = match self.hosts[h].faults.on_op(DeviceOp::ResyncResp, now) {
                Some(FaultAction::Fail | FaultAction::Drop) => {
                    self.tracer
                        .scoped(in_flow)
                        .record(|| ano_trace::Event::DeviceFault { kind: "resync_resp" });
                    continue;
                }
                Some(FaultAction::Delay(d)) => d,
                None => ano_sim::time::SimDuration::from_nanos(0),
            };
            self.sched.schedule(
                now + resync_delay + extra,
                Event::ResyncResp {
                    host: h as u16,
                    conn,
                    layer,
                    tcpsn,
                    ok,
                    idx,
                    epoch,
                },
            );
        }
        for (token, ready) in target_replies {
            self.sched.schedule(
                ready,
                Event::TargetReply {
                    host: h as u16,
                    conn,
                    token,
                },
            );
        }
        // Restore the pool before draining calls: `run_app_calls` recycles
        // each delivered plaintext buffer back into it.
        self.plains_pool = plains_pool;
        {
            self.run_app_calls(h, &mut app_calls);
        }
        self.app_calls = app_calls;
        {
            self.pump_conn(h, conn);
        }
    }

    fn handle_rto(&mut self, h: usize, conn: ConnId, gen: u64) {
        let now = self.sched.now();
        let resched = {
            let host = &mut self.hosts[h];
            let Some(c) = host.conns.get_mut(&conn) else {
                return;
            };
            match c.rto_event {
                Some((t, g)) if g == gen && t == now => {}
                _ => return, // superseded timer chain
            }
            c.rto_event = None;
            match c.armed_rto {
                Some(d) if d <= now => {
                    // The deadline really passed: fire the timeout.
                    c.armed_rto = None;
                    c.tcp.on_rto(now);
                    None
                }
                // Deadline extended since this event was queued (ACKs kept
                // arriving): hop the single live event to the new deadline.
                Some(d) => {
                    c.rto_event = Some((d, gen));
                    Some(d)
                }
                None => return, // disarmed (everything acked)
            }
        };
        match resched {
            Some(d) => self.sched.schedule(
                d,
                Event::Rto {
                    host: h as u16,
                    conn,
                    gen,
                },
            ),
            None => self.pump_conn(h, conn),
        }
    }

    fn handle_resync_req(&mut self, h: usize, conn: ConnId, layer: u8, tcpsn: u64) {
        let now = self.sched.now();
        let resync_cpu = self.cfg.cost.resync_confirm_cpu;
        let mut resps = Vec::new();
        let in_flow = {
            let host = &mut self.hosts[h];
            let Some(c) = host.conns.get_mut(&conn) else {
                return;
            };
            host.cpu.run(c.core, now, resync_cpu);
            match (&mut c.proto, layer) {
                (Proto::Tls { rx, .. }, 0) => rx.on_resync_request(tcpsn),
                (Proto::NvmeHost { host: nh }, 0) => nh.parser_mut().on_resync_request(tcpsn),
                (Proto::NvmeTarget { target, .. }, 0) => {
                    target.parser_mut().on_resync_request(tcpsn)
                }
                (Proto::NvmeTlsHost { tls_rx, .. }, 0) => tls_rx.on_resync_request(tcpsn),
                (Proto::NvmeTlsHost { host: nh, .. }, 1) => {
                    nh.parser_mut().on_resync_request(tcpsn)
                }
                (Proto::NvmeTlsTarget { tls_rx, .. }, 0) => tls_rx.on_resync_request(tcpsn),
                (Proto::NvmeTlsTarget { target, .. }, 1) => {
                    target.parser_mut().on_resync_request(tcpsn)
                }
                _ => {}
            }
            poll_resyncs(&mut c.proto, &mut resps);
            c.in_flow.0
        };
        let epoch = self.hosts[h].nic.epoch();
        for (layer, tcpsn, ok, idx) in resps {
            let extra = match self.hosts[h].faults.on_op(DeviceOp::ResyncResp, now) {
                Some(FaultAction::Fail | FaultAction::Drop) => {
                    self.tracer
                        .scoped(in_flow)
                        .record(|| ano_trace::Event::DeviceFault { kind: "resync_resp" });
                    continue;
                }
                Some(FaultAction::Delay(d)) => d,
                None => ano_sim::time::SimDuration::from_nanos(0),
            };
            self.sched.schedule(
                now + self.cfg.resync_delay + extra,
                Event::ResyncResp {
                    host: h as u16,
                    conn,
                    layer,
                    tcpsn,
                    ok,
                    idx,
                    epoch,
                },
            );
        }
    }

    /// Materializes one scheduled device fault ([`ScheduledFault`]).
    fn handle_device_fault(&mut self, h: usize, idx: usize) {
        let Some(&(_, fault)) = self.hosts[h].faults.scheduled().get(idx) else {
            return;
        };
        self.hosts[h].faults.note_scheduled_fired();
        match fault {
            ScheduledFault::Reset => {
                // Quiesce-to-software is implicit: with every context wiped,
                // packets fall through `rx_process`/`tx_process` untouched
                // and the L5P layers do the work. The driver then walks its
                // connections and re-offloads each through the normal
                // install ladder — engines restart mid-stream in Searching
                // and reconverge via the §4.3 resync path. Breaker-open
                // connections stay in software.
                self.hosts[h].nic.reset();
                let conns: Vec<ConnId> = self.hosts[h].conns.keys().copied().collect();
                for conn in conns {
                    self.try_install(h, conn, true, 0);
                    self.try_install(h, conn, false, 0);
                }
            }
            ScheduledFault::InvalidateRx(flow) => {
                if self.hosts[h].nic.invalidate_rx(flow) {
                    let owner = self.hosts[h]
                        .conns
                        .iter()
                        .find(|(_, c)| c.in_flow == flow)
                        .map(|(id, _)| *id);
                    if let Some(conn) = owner {
                        self.try_install(h, conn, true, 0);
                    }
                }
            }
            ScheduledFault::CorruptRx(flow) => {
                // Latent: the engine's integrity check trips on the next
                // packet and it re-derives state via the resync ladder.
                self.hosts[h].nic.corrupt_rx(flow);
            }
        }
    }

    fn handle_target_reply(&mut self, h: usize, conn: ConnId, token: u64) {
        let now = self.sched.now();
        let World { cfg, hosts, .. } = &mut *self;
        let cost = &cfg.cost;
        {
            let host = &mut hosts[h];
            let Some(c) = host.conns.get_mut(&conn) else {
                return;
            };
            let (wire, cycles): (Vec<Payload>, u64) = match &mut c.proto {
                Proto::NvmeTarget {
                    target, pending, ..
                } => {
                    let Some(reply) = pending.remove(&token) else {
                        return;
                    };
                    target.emit(reply, cost)
                }
                Proto::NvmeTlsTarget {
                    target,
                    pending,
                    tls_tx,
                    inner,
                    ..
                } => {
                    let Some(reply) = pending.remove(&token) else {
                        return;
                    };
                    let (capsules, mut cyc) = target.emit(reply, cost);
                    // Wrap the capsule stream in TLS records.
                    let mut records = Vec::new();
                    for cap in capsules {
                        inner.borrow_mut().push_capsule(&cap);
                        let (recs, c2) = tls_tx.send(&cap, cost);
                        cyc += c2;
                        records.extend(recs);
                    }
                    (records, cyc)
                }
                _ => return,
            };
            host.cpu.run(c.core, now, cycles);
            for w in wire {
                c.tcp.send(w);
            }
        }
        self.pump_conn(h, conn);
    }

    // ------------------------------------------------------------------
    // Transmit pump.

    /// Drains TCP's transmit queue through the NIC onto the link.
    // ano-lint: entry(hot-path)
    pub(crate) fn pump_conn(&mut self, h: usize, conn: ConnId) {
        // Split-borrow the world once: hot config stays a shared borrow,
        // link deliveries land in the world-owned reusable burst buffer —
        // the steady-state transmit path allocates nothing per packet.
        let World {
            cfg,
            hosts,
            links,
            rng,
            sched,
            burst,
            held,
            ..
        } = &mut *self;
        let now = sched.now();
        let cost = &cfg.cost;
        // One connection lookup for the whole pump: nothing inside the loop
        // can remove the connection, and the host split-borrow keeps `cpu`
        // and `nic` usable alongside the `ConnState` borrow.
        // ano-lint: allow(transitive-panic): host index is a dispatch-validated topology id
        let HostState { cpu, nic, conns, .. } = &mut hosts[h];
        let Some(c) = conns.get_mut(&conn) else {
            return;
        };
        // Topology routing is per connection: the peer host and the
        // outgoing link were resolved once at `connect_pair` time, so the
        // per-packet path stays O(1) regardless of fleet size.
        let peer = c.peer;
        let link_out = c.link_out;
        let link = links.by_id_mut(link_out);
        // Hold-mode is sampled once per pump: a chaos plan flips modes from
        // its own dispatch slot, never mid-pump.
        let link_held = link.is_held();
        loop {
            // Transmission is paced by the core: a packet effectively
            // leaves when the core's queued work drains. Using that time
            // for TCP keeps RTT samples and RTO arming consistent with the
            // actual send time (otherwise a backlogged core causes spurious
            // RTOs for packets that have not reached the wire yet).
            let eff_now = cpu.free_at(c.core).max(now);
            let Some(mut seg) = c.tcp.poll_transmit(eff_now) else {
                break;
            };
            // Pure ACKs leave from softirq context promptly: they pay their
            // (small) CPU cost but do not queue behind heavy L5P work.
            let tx_cost = if seg.payload.is_empty() {
                cost.per_ack
            } else {
                cost.per_pkt_tx
            };
            let tx_done = cpu.run(c.core, now, tx_cost);
            let mut payload = seg.payload;
            let mut send_at = if payload.is_empty() {
                now + ano_sim::time::SimDuration::from_nanos(500)
            } else {
                tx_done
            };
            if nic.has_tx(c.out_flow) && !payload.is_empty() {
                let adapter = TxAdapter {
                    proto: &c.proto,
                    tcp: c.tcp.sender(),
                };
                let res = nic.tx_process(c.out_flow, seg.seq64, &mut payload, &adapter);
                if res.replay_bytes > 0 {
                    // Context recovery: replayed bytes cross PCIe; the
                    // driver also burns a few cycles setting it up.
                    send_at = send_at + cost.pcie_transfer(res.replay_bytes);
                    cpu.run(c.core, now, cost.ctx_recovery_cpu);
                }
                if res.cache_miss {
                    send_at = send_at + cost.nic_cache_miss_latency;
                }
            }
            let wire_len = payload.len() + WIRE_HEADER_BYTES;
            burst.clear();
            link.transmit_into(send_at, wire_len, rng, burst);
            let fanout = burst.len();
            for (i, delivery) in burst.drain(..).enumerate() {
                let deliver = if delivery.corrupt {
                    corrupt_copy(&payload)
                } else {
                    // ano-lint: allow(hot-alloc): Bytes-backed payload clone is an Arc refcount bump, not a heap copy
                    Some(payload.clone())
                };
                // A corrupt frame with no bytes to flip (synthetic payload or
                // pure ACK) is discarded, as if the receiver's FCS caught it.
                let Some(deliver) = deliver else { continue };
                // The event takes the segment's SACK vector; only the rare
                // duplicate fan-out (fanout > 1) pays for a clone.
                let sack = if i + 1 == fanout {
                    std::mem::take(&mut seg.sack)
                } else {
                    // ano-lint: allow(hot-alloc): SACK vector clone per retained segment, inventoried for arena round 2 (ROADMAP item 1)
                    seg.sack.clone()
                };
                let at = delivery.at + cost.nic_latency;
                let ev = Event::Packet {
                    host: peer,
                    conn,
                    seq: seg.seq,
                    seq64: seg.seq64,
                    ack: seg.ack,
                    wnd: seg.wnd,
                    sack,
                    payload: deliver,
                };
                if link_held {
                    // A held link stalls without dropping: the delivery is
                    // parked (in computed-arrival order) until the chaos
                    // plan releases the direction.
                    held.entry(link_out).or_default().push((at, ev));
                } else {
                    sched.schedule(at, ev);
                }
            }
        }
        // Arm/refresh the retransmission timer. One live `Event::Rto` per
        // connection: when the deadline merely extends (the common per-ACK
        // case) the already-queued event re-schedules itself on dispatch,
        // so the heap never accumulates stale timers.
        match c.tcp.rto_deadline() {
            Some(d) => {
                c.armed_rto = Some(d);
                let need_new = match c.rto_event {
                    // The live event fires after the new deadline: it
                    // would be late, so supersede it.
                    Some((t, _)) => t > d,
                    None => true,
                };
                if need_new {
                    c.rto_gen += 1;
                    c.rto_event = Some((d, c.rto_gen));
                    sched.schedule(
                        d,
                        Event::Rto {
                            host: h as u16,
                            conn,
                            gen: c.rto_gen,
                        },
                    );
                }
            }
            None => c.armed_rto = None,
        }
    }

    // ------------------------------------------------------------------
    // Application plumbing.

    fn fire_app(&mut self, h: usize, f: impl FnOnce(&mut dyn crate::app::HostApp, &mut HostApi)) {
        // ano-lint: allow(transitive-panic): host index is a dispatch-validated topology id
        let Some(mut app) = self.apps[h].take() else {
            return;
        };
        let mut api = HostApi::new(self.sched.now());
        f(app.as_mut(), &mut api);
        // ano-lint: allow(transitive-panic): host index is a dispatch-validated topology id
        self.apps[h] = Some(app);
        let actions = std::mem::take(&mut api.actions);
        self.run_actions(h, actions);
    }

    fn run_app_calls(&mut self, h: usize, calls: &mut Vec<AppCall>) {
        for call in calls.drain(..) {
            match call {
                AppCall::Data { conn, plains } => {
                    self.fire_app(h, |app, api| {
                        app.on_event(
                            api,
                            AppEvent::Data {
                                conn,
                                chunks: &plains,
                            },
                        )
                    });
                    self.recycle_plains(plains);
                }
                AppCall::NvmeDone { conn, completions } => {
                    for completion in &completions {
                        self.fire_app(h, |app, api| {
                            app.on_event(
                                api,
                                AppEvent::NvmeDone {
                                    conn,
                                    completion,
                                },
                            )
                        });
                    }
                }
                AppCall::Writable { conn } => self.fire_app(h, |app, api| {
                    app.on_event(api, AppEvent::Writable { conn })
                }),
            }
        }
    }

    /// Returns an emptied plaintext buffer to the pool (bounded so a burst
    /// of large records cannot pin memory forever).
    fn recycle_plains(&mut self, mut plains: Vec<PlainChunk>) {
        if self.plains_pool.len() < 8 {
            plains.clear();
            self.plains_pool.push(plains);
        }
    }

    fn run_actions(&mut self, h: usize, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Send { conn, data } => self.proto_send(h, conn, data),
                Action::NvmeRead {
                    conn,
                    id,
                    offset,
                    len,
                } => self.nvme_submit(h, conn, id, offset, len, None),
                Action::NvmeWrite {
                    conn,
                    id,
                    offset,
                    data,
                } => self.nvme_submit(h, conn, id, offset, data.len() as u32, Some(data)),
                Action::Charge { cycles } => {
                    let now = self.sched.now();
                    // ano-lint: allow(transitive-panic): host index is a dispatch-validated topology id
                    let host = &mut self.hosts[h];
                    let core = host.cpu.least_busy();
                    host.cpu.run(core, now, cycles);
                }
                Action::Timer { token, at } => {
                    self.sched.schedule(
                        at,
                        Event::AppTimer {
                            host: h as u16,
                            token,
                        },
                    );
                }
            }
        }
    }

    /// Application bytes into a Raw or TLS connection.
    fn proto_send(&mut self, h: usize, conn: ConnId, data: Payload) {
        let now = self.sched.now();
        let World { cfg, hosts, .. } = &mut *self;
        let cost = &cfg.cost;
        {
            // ano-lint: allow(transitive-panic): host index is a dispatch-validated topology id
            let host = &mut hosts[h];
            let Some(c) = host.conns.get_mut(&conn) else {
                return;
            };
            let mut cycles = cost.syscall;
            match &mut c.proto {
                Proto::Raw => {
                    cycles += ano_sim::cost::CostModel::bytes_cycles(cost.stack_cpb, data.len());
                    c.tcp.send(data);
                }
                Proto::Tls { tx, .. } => {
                    let (wire, cyc) = tx.send(&data, cost);
                    cycles += cyc;
                    for w in wire {
                        c.tcp.send(w);
                    }
                }
                // ano-lint: allow(transitive-panic): dispatch contract: Send is only routed to Raw/Tls connections
                _ => panic!("Send is only valid on Raw/Tls connections"),
            }
            host.cpu.run(c.core, now, cycles);
            c.blocked = true; // notify (once) when the queue drains
        }
        self.pump_conn(h, conn);
    }

    /// NVMe submission on an initiator connection.
    fn nvme_submit(
        &mut self,
        h: usize,
        conn: ConnId,
        id: u64,
        offset: u64,
        len: u32,
        write_data: Option<Payload>,
    ) {
        let now = self.sched.now();
        let World { cfg, hosts, .. } = &mut *self;
        let cost = &cfg.cost;
        {
            // ano-lint: allow(transitive-panic): host index is a dispatch-validated topology id
            let host = &mut hosts[h];
            let Some(c) = host.conns.get_mut(&conn) else {
                return;
            };
            let (wire, cycles): (Vec<Payload>, u64) = match &mut c.proto {
                Proto::NvmeHost { host: nh } => match &write_data {
                    None => {
                        let (w, cyc) = nh.submit_read(id, offset, len, cost);
                        // ano-lint: allow(hot-alloc): single-capsule wrapper vec per NVMe submit, inventoried for arena round 2 (ROADMAP item 1)
                        (vec![w], cyc)
                    }
                    Some(d) => {
                        let (w, cyc) = nh.submit_write(id, offset, d, cost);
                        // ano-lint: allow(hot-alloc): single-capsule wrapper vec per NVMe submit, inventoried for arena round 2 (ROADMAP item 1)
                        (vec![w], cyc)
                    }
                },
                Proto::NvmeTlsHost {
                    host: nh,
                    tls_tx,
                    inner,
                    ..
                } => {
                    let (capsule, mut cyc) = match &write_data {
                        None => nh.submit_read(id, offset, len, cost),
                        Some(d) => nh.submit_write(id, offset, d, cost),
                    };
                    inner.borrow_mut().push_capsule(&capsule);
                    let (recs, c2) = tls_tx.send(&capsule, cost);
                    cyc += c2;
                    (recs, cyc)
                }
                // ano-lint: allow(transitive-panic): dispatch contract: NVMe ops are only routed to initiator connections
                _ => panic!("NVMe I/O is only valid on initiator connections"),
            };
            host.cpu.run(c.core, now, cycles);
            for w in wire {
                c.tcp.send(w);
            }
        }
        self.pump_conn(h, conn);
    }
}

/// The receiver's copy of a corrupted frame: one payload byte flipped, at a
/// deterministic position (mid-payload, so it lands in a record body rather
/// than a header for all but tiny packets). Returns `None` when there are no
/// bytes to flip — synthetic payloads and pure ACKs — in which case the frame
/// is dropped as if the FCS caught it; TCP retransmits it cleanly.
fn corrupt_copy(payload: &Payload) -> Option<Payload> {
    match payload.as_real() {
        Some(bytes) if !bytes.is_empty() => {
            // ano-lint: allow(hot-alloc): fault-injection copy; runs only when the chaos script corrupts a payload
            let mut copy = bytes.to_vec();
            let mid = copy.len() / 2;
            // ano-lint: allow(transitive-panic): mid is len/2 of a checked non-empty buffer
            copy[mid] ^= 0xA5;
            Some(Payload::real(copy))
        }
        _ => None,
    }
}

/// Per-packet receive cost of the stack for this connection's protocol.
fn per_pkt_rx_cost(proto: &Proto, cost: &ano_sim::cost::CostModel) -> u64 {
    match proto {
        Proto::NvmeHost { .. } | Proto::NvmeTlsHost { .. } => cost.per_pkt_nvme_rx,
        _ => cost.per_pkt_rx,
    }
}

/// Releases transmit-side L5P state below the cumulative ack.
fn release_proto(proto: &mut Proto, acked: u64) {
    match proto {
        Proto::Raw => {}
        Proto::Tls { tx, .. } => tx.release_below(acked),
        Proto::NvmeHost { host } => host.release_below(acked),
        Proto::NvmeTarget { target, .. } => target.release_below(acked),
        Proto::NvmeTlsHost {
            tls_tx,
            host,
            inner,
            ..
        } => {
            tls_tx.release_below(acked);
            let plain_acked =
                acked.saturating_sub(TLS_OVERHEAD as u64 * tls_tx.stats().records);
            host.release_below(plain_acked);
            inner.borrow_mut().prune(plain_acked);
        }
        Proto::NvmeTlsTarget {
            tls_tx,
            target,
            inner,
            ..
        } => {
            tls_tx.release_below(acked);
            let plain_acked =
                acked.saturating_sub(TLS_OVERHEAD as u64 * tls_tx.stats().records);
            target.release_below(plain_acked);
            inner.borrow_mut().prune(plain_acked);
        }
    }
}

/// Drains pending resync responses from all layers of a proto:
/// `(layer, tcpsn, ok, msg_index)`.
fn poll_resyncs(proto: &mut Proto, out: &mut Vec<(u8, u64, bool, u64)>) {
    match proto {
        Proto::Raw => {}
        Proto::Tls { rx, .. } => {
            out.extend(rx.take_resync_responses().into_iter().map(|(t, ok, i)| (0, t, ok, i)));
        }
        Proto::NvmeHost { host } => {
            out.extend(
                host.parser_mut()
                    .take_resync_responses()
                    .into_iter()
                    .map(|(t, ok, i)| (0, t, ok, i)),
            );
        }
        Proto::NvmeTarget { target, .. } => {
            out.extend(
                target
                    .parser_mut()
                    .take_resync_responses()
                    .into_iter()
                    .map(|(t, ok, i)| (0, t, ok, i)),
            );
        }
        Proto::NvmeTlsHost { tls_rx, host, .. } => {
            out.extend(
                tls_rx
                    .take_resync_responses()
                    .into_iter()
                    .map(|(t, ok, i)| (0, t, ok, i)),
            );
            out.extend(
                host.parser_mut()
                    .take_resync_responses()
                    .into_iter()
                    .map(|(t, ok, i)| (1, t, ok, i)),
            );
        }
        Proto::NvmeTlsTarget { tls_rx, target, .. } => {
            out.extend(
                tls_rx
                    .take_resync_responses()
                    .into_iter()
                    .map(|(t, ok, i)| (0, t, ok, i)),
            );
            out.extend(
                target
                    .parser_mut()
                    .take_resync_responses()
                    .into_iter()
                    .map(|(t, ok, i)| (1, t, ok, i)),
            );
        }
    }
}

/// Delivers in-order chunks into the connection's protocol layers.
/// Drains `chunks`, appends deferred notifications to `calls` (plaintext
/// buffers come from — and return to — `pool`), and returns the CPU cycles
/// spent.
fn proto_rx(
    c: &mut crate::world::ConnState,
    chunks: &mut Vec<RxChunk>,
    cost: &ano_sim::cost::CostModel,
    now: SimTime,
    conn: ConnId,
    resync_resps: &mut Vec<(u8, u64, bool, u64)>,
    target_replies: &mut Vec<(u64, SimTime)>,
    calls: &mut Vec<AppCall>,
    pool: &mut Vec<Vec<PlainChunk>>,
) -> u64 {
    let mut cycles = 0u64;
    match &mut c.proto {
        Proto::Raw => {
            let mut plains = pool.pop().unwrap_or_default();
            plains.extend(chunks.drain(..).map(|ch| PlainChunk {
                plain_off: ch.offset,
                payload: ch.payload,
                flags: ch.flags,
            }));
            let bytes: u64 = plains.iter().map(|p| p.payload.len() as u64).sum();
            cycles += ano_sim::cost::CostModel::bytes_cycles(cost.stack_cpb, bytes as usize);
            c.delivered += bytes;
            calls.push(AppCall::Data { conn, plains });
        }
        Proto::Tls { rx, .. } => {
            let mut plains = pool.pop().unwrap_or_default();
            cycles += rx.on_chunks_into(chunks.drain(..), cost, &mut plains);
            let bytes: u64 = plains.iter().map(|p| p.payload.len() as u64).sum();
            c.delivered += bytes;
            if !plains.is_empty() {
                calls.push(AppCall::Data { conn, plains });
            } else {
                pool.push(plains);
            }
        }
        Proto::NvmeHost { host } => {
            let stream = chunks.drain(..).map(|ch| StreamChunk {
                offset: ch.offset,
                payload: ch.payload,
                flags: ch.flags,
            });
            cycles += host.on_chunks(stream, cost);
            let completions = host.take_completions();
            let bytes: u64 = completions
                .iter()
                .map(|x| x.placed_bytes + x.copied_bytes)
                .sum();
            c.delivered += bytes;
            if !completions.is_empty() {
                calls.push(AppCall::NvmeDone { conn, completions });
            }
        }
        Proto::NvmeTarget {
            target,
            pending,
            next_token,
        } => {
            let stream = chunks.drain(..).map(|ch| StreamChunk {
                offset: ch.offset,
                payload: ch.payload,
                flags: ch.flags,
            });
            let (replies, cyc) = target.on_chunks(stream, now, cost);
            cycles += cyc;
            for r in replies {
                let token = *next_token;
                *next_token += 1;
                pending.insert(token, r.reply);
                target_replies.push((token, r.ready));
            }
        }
        Proto::NvmeTlsHost {
            tls_rx, host, ..
        } => {
            let mut plains = pool.pop().unwrap_or_default();
            cycles += tls_rx.on_chunks_into(chunks.drain(..), cost, &mut plains);
            let stream = plains.drain(..).map(|p| StreamChunk {
                offset: p.plain_off,
                payload: p.payload,
                flags: p.flags,
            });
            cycles += host.on_chunks(stream, cost);
            pool.push(plains);
            let completions = host.take_completions();
            let bytes: u64 = completions
                .iter()
                .map(|x| x.placed_bytes + x.copied_bytes)
                .sum();
            c.delivered += bytes;
            if !completions.is_empty() {
                calls.push(AppCall::NvmeDone { conn, completions });
            }
        }
        Proto::NvmeTlsTarget {
            tls_rx,
            target,
            pending,
            next_token,
            ..
        } => {
            let mut plains = pool.pop().unwrap_or_default();
            cycles += tls_rx.on_chunks_into(chunks.drain(..), cost, &mut plains);
            let stream = plains.drain(..).map(|p| StreamChunk {
                offset: p.plain_off,
                payload: p.payload,
                flags: p.flags,
            });
            let (replies, cyc) = target.on_chunks(stream, now, cost);
            cycles += cyc;
            pool.push(plains);
            for r in replies {
                let token = *next_token;
                *next_token += 1;
                pending.insert(token, r.reply);
                target_replies.push((token, r.ready));
            }
        }
    }
    poll_resyncs(&mut c.proto, resync_resps);
    cycles
}
