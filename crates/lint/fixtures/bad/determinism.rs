//! Known-bad fixture: every determinism rule must fire on this file.

use std::collections::HashMap;
use std::collections::HashSet;
use std::time::Instant;
use std::time::SystemTime;

pub fn wall_clock() -> Instant {
    Instant::now()
}

pub fn also_wall_clock() -> SystemTime {
    SystemTime::now()
}

pub fn spawn_worker() {
    std::thread::spawn(|| {});
}

pub fn hashed() -> HashMap<u32, u32> {
    let mut m = HashMap::new();
    let mut s = HashSet::new();
    s.insert(1u32);
    m.insert(1, 2);
    m
}

pub fn aslr_leak(x: &u32) -> String {
    format!("{:p}", x)
}
