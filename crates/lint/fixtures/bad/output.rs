//! Known-bad fixture: every observability rule must fire on this file.

pub fn chatty(x: u32) {
    println!("x = {x}");
    eprintln!("warn: {x}");
    print!("partial");
    eprint!("partial err");
}

pub fn debugged(v: &[u32]) -> u32 {
    dbg!(v.len() as u32)
}
