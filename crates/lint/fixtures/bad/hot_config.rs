//! Known-bad fixture: the config-clone rule must fire on every per-event
//! clone of a config-named receiver (linted under hot-config scope).

pub struct Cost {
    pub per_byte: u64,
}

pub struct Cfg {
    pub cost: Cost,
}

pub struct Runtime {
    pub cfg: Cfg,
}

impl Runtime {
    pub fn dispatch(&mut self, events: &[u64]) -> u64 {
        let mut total = 0;
        for _ev in events {
            let cost = self.cfg.cost.clone();
            total += cost.per_byte;
        }
        total
    }

    pub fn whole_config(&self) -> Cfg {
        self.cfg.clone()
    }

    pub fn degraded(&self, degrade: &Cost) -> Cost {
        degrade.clone()
    }

    pub fn renamed(&self, config: &Cfg) -> Cfg {
        config.clone()
    }
}
