//! Known-bad fixture: an rx-engine transition table with an edge the
//! invariant's LEGAL_EDGES set does not allow (Tracking -> Offloading
//! skips boundary confirmation entirely).

pub fn legal_transition(from: ResyncPhase, to: ResyncPhase) -> bool {
    matches!(
        (from, to),
        (ResyncPhase::Offloading, ResyncPhase::Searching)
            | (ResyncPhase::Searching, ResyncPhase::Tracking)
            | (ResyncPhase::Tracking, ResyncPhase::Searching)
            | (ResyncPhase::Tracking, ResyncPhase::Confirmed)
            | (ResyncPhase::Tracking, ResyncPhase::Offloading)
            | (ResyncPhase::Confirmed, ResyncPhase::Offloading)
            | (ResyncPhase::Confirmed, ResyncPhase::Searching)
    )
}
