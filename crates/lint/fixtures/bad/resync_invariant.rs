//! Known-bad fixture: a LEGAL_EDGES spec missing an edge the engine can
//! emit (Tracking -> Searching, the failed-walk retry path).

pub const LEGAL_EDGES: &[(ResyncPhase, ResyncPhase)] = &[
    (ResyncPhase::Offloading, ResyncPhase::Searching),
    (ResyncPhase::Searching, ResyncPhase::Tracking),
    (ResyncPhase::Tracking, ResyncPhase::Confirmed),
    (ResyncPhase::Confirmed, ResyncPhase::Offloading),
    (ResyncPhase::Confirmed, ResyncPhase::Searching),
];
