//! Known-bad fixture: every panic-freedom rule must fire on this file
//! (linted under hot-path scope).

pub fn unwraps(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn expects(x: Option<u32>) -> u32 {
    x.expect("present")
}

pub fn panics() {
    panic!("boom");
}

pub fn todos() {
    todo!()
}

pub fn unimplementeds() {
    unimplemented!()
}

pub fn indexes(buf: &[u8]) -> u8 {
    buf[0]
}

pub fn slices(buf: &[u8], from: usize) -> &[u8] {
    &buf[from..]
}
