//! Known-bad fixture: suppression misuse. A justification-less allow is
//! itself an error and silences nothing; an unknown rule is an error.

// ano-lint: allow(hash-collection)
use std::collections::HashMap;

// ano-lint: allow(made-up-rule): this rule does not exist
pub fn noop() {}

pub fn build() -> HashMap<u32, u32> {
    // ano-lint: allow(wall-clock): wrong rule for the next line
    HashMap::new()
}
