//! Graph-fixture crate `alpha`: a hot-path entry whose facts flow across
//! a module boundary (into [`frame`]) and a crate boundary (into `beta`).

#![forbid(unsafe_code)]

pub mod frame;

// ano-lint: entry(hot-path)
pub fn pump(data: &[u8]) -> u64 {
    frame::split(data);
    rebuild(data);
    beta::clock::sample()
}

// ano-lint: cold(recovery slow path; the alloc below must not count)
pub fn rebuild(data: &[u8]) -> Vec<u8> {
    data.to_vec()
}
