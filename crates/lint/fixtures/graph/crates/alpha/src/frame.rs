//! Framing helpers reached from `alpha::pump` — the panic and the alloc
//! here are two and one call deep respectively.

pub fn split(data: &[u8]) -> Vec<u8> {
    header_byte(data);
    data.to_vec()
}

fn header_byte(data: &[u8]) -> u8 {
    data[0]
}

#[cfg(test)]
mod tests {
    // Everything under cfg(test) is pruned: this unwrap must never become
    // a node, a seed, or a transitive finding.
    pub fn test_only_panic(x: Option<u8>) -> u8 {
        x.unwrap()
    }

    #[test]
    fn split_keeps_bytes() {
        assert_eq!(super::split(&[7]).len(), 1);
        assert_eq!(test_only_panic(Some(3)), 3);
    }
}
