//! A wall-clock read two calls below the `alpha` entry.

pub fn sample() -> u64 {
    stamp()
}

fn stamp() -> u64 {
    let _t = std::time::Instant::now();
    0
}
