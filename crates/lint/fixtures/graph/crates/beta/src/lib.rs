//! Graph-fixture crate `beta`: the nondeterminism source that taints
//! `alpha::pump` from one crate away.

#![forbid(unsafe_code)]

pub mod clock;
