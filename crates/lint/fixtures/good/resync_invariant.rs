//! Known-good twin: the exact six-edge §4.3 table the real invariant
//! declares.

pub const LEGAL_EDGES: &[(ResyncPhase, ResyncPhase)] = &[
    (ResyncPhase::Offloading, ResyncPhase::Searching),
    (ResyncPhase::Searching, ResyncPhase::Tracking),
    (ResyncPhase::Tracking, ResyncPhase::Searching),
    (ResyncPhase::Tracking, ResyncPhase::Confirmed),
    (ResyncPhase::Confirmed, ResyncPhase::Offloading),
    (ResyncPhase::Confirmed, ResyncPhase::Searching),
];
