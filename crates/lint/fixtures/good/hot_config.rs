//! Known-good twin: split-borrowed config access plus clones of
//! non-config values; no config-clone rule may fire under hot-config scope.

pub struct Cost {
    pub per_byte: u64,
}

pub struct Cfg {
    pub cost: Cost,
}

pub struct Runtime {
    pub cfg: Cfg,
}

impl Runtime {
    pub fn dispatch(&mut self, events: &[u64]) -> u64 {
        // Split-borrow: one shared borrow of the config, no per-event copy.
        let cost = &self.cfg.cost;
        let mut total = 0;
        for _ev in events {
            total += cost.per_byte;
        }
        total
    }

    pub fn payloads(&self, payload: &Vec<u8>) -> Vec<u8> {
        // Cloning non-config values is out of this rule's scope.
        payload.clone()
    }

    pub fn not_a_call(&self) -> bool {
        // `cfg!` is a macro, not a `.clone()` method call.
        cfg!(test)
    }
}

#[cfg(test)]
mod tests {
    // Tests may clone configs freely even in hot-config files.
    use super::*;

    #[test]
    fn test_can_clone() {
        let c = Cost { per_byte: 1 };
        let _ = c; // fixture is never compiled; shape only
    }
}
