//! Known-good twin: observability goes through the trace layer (modeled
//! here by a recording closure); no observability rule may fire.

pub struct Tracer;

impl Tracer {
    pub fn record(&self, _f: impl FnOnce() -> String) {}
    pub fn count(&self, _key: &str, _n: u64) {}
    pub fn print(&self) {}
}

pub fn quiet(t: &Tracer, x: u32) {
    t.record(|| format!("x = {x}"));
    t.count("x.seen", 1);
    // A method *named* print is not the print! macro.
    t.print();
}
