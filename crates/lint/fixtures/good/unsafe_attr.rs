//! Known-good twin: the crate root carries the attribute.

#![forbid(unsafe_code)]

pub mod imaginary;
