//! Known-good twin: deterministic equivalents of everything the bad
//! fixture does; no determinism rule may fire.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

pub struct SimTime(pub u64);

pub fn sim_clock(now: SimTime) -> SimTime {
    // Time comes from the simulation scheduler, not the wall clock.
    now
}

pub fn ordered() -> BTreeMap<u32, u32> {
    let mut m = BTreeMap::new();
    let mut s = BTreeSet::new();
    s.insert(1u32);
    m.insert(1, 2);
    m
}

pub fn stable_id(flow: u64) -> String {
    // Mentioning HashMap or Instant in strings/comments is fine: "HashMap".
    format!("flow-{flow}")
}

pub fn thread_the_needle(thread: u32) -> u32 {
    // A plain binding named `thread` is not std::thread.
    thread + 1
}
