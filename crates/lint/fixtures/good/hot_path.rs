//! Known-good twin: non-panicking forms of everything the bad fixture
//! does; no panic-freedom rule may fire under hot-path scope.

pub fn unwraps(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

pub fn expects(x: Option<u32>) -> u32 {
    match x {
        Some(v) => v,
        None => 0,
    }
}

pub fn indexes(buf: &[u8]) -> u8 {
    buf.first().copied().unwrap_or(0)
}

pub fn slices(buf: &[u8], from: usize) -> &[u8] {
    buf.get(from..).unwrap_or_default()
}

pub fn typed(_x: &mut [u8]) -> [u8; 2] {
    // Slice types, array types, and array literals are not indexing.
    [0, 0]
}

#[cfg(test)]
mod tests {
    // Tests may panic freely even in hot-path files.
    #[test]
    fn test_can_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let b = [1u8, 2];
        assert_eq!(b[0], 1);
    }
}
