//! Known-good twin: the exact six-edge §4.3 table the real engine
//! declares.

pub fn legal_transition(from: ResyncPhase, to: ResyncPhase) -> bool {
    matches!(
        (from, to),
        (ResyncPhase::Offloading, ResyncPhase::Searching)
            | (ResyncPhase::Searching, ResyncPhase::Tracking)
            | (ResyncPhase::Tracking, ResyncPhase::Searching)
            | (ResyncPhase::Tracking, ResyncPhase::Confirmed)
            | (ResyncPhase::Confirmed, ResyncPhase::Offloading)
            | (ResyncPhase::Confirmed, ResyncPhase::Searching)
    )
}
