//! Known-good twin: a justified suppression silences exactly its rule on
//! the covered line, and nothing is left over.

// ano-lint: allow(hash-collection): fixture proving justified suppressions
// silence the rule; this map is keyed-access only, never iterated.
use std::collections::HashMap;

pub fn build() -> usize {
    let m: HashMap<u32, u32> = HashMap::new(); // ano-lint: allow(hash-collection): same-line form
    m.len()
}
