//! Fixture-based self-tests for the lint engine (ISSUE PR 4, satellite d).
//!
//! Every rule family has a known-bad fixture it must fire on and a
//! known-good twin it must stay silent on; suppression misuse is itself
//! diagnosed; and the resync transition table extracted from the *real*
//! `crates/core/src/rx.rs` is pinned against the legal-edge set in
//! `crates/scenario/src/invariant.rs`.

use std::fs;
use std::path::Path;

use ano_lint::engine::{lint_source, lint_workspace};
use ano_lint::resync;
use ano_lint::{Diagnostic, FileScope, Severity};

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

fn lint_fixture(name: &str, scope: FileScope) -> Vec<Diagnostic> {
    lint_source(name, &fixture(name), scope)
}

fn rules_fired(diags: &[Diagnostic]) -> Vec<&str> {
    let mut r: Vec<&str> = diags.iter().map(|d| d.rule).collect();
    r.sort();
    r.dedup();
    r
}

const DETERMINISM: FileScope = FileScope {
    determinism: true,
    observability: false,
    hot_path: false,
    hot_config: false,
    crate_root: false,
};
const HOT_PATH: FileScope = FileScope {
    determinism: false,
    observability: false,
    hot_path: true,
    hot_config: false,
    crate_root: false,
};
const HOT_CONFIG: FileScope = FileScope {
    determinism: false,
    observability: false,
    hot_path: false,
    hot_config: true,
    crate_root: false,
};
const OBSERVABILITY: FileScope = FileScope {
    determinism: false,
    observability: true,
    hot_path: false,
    hot_config: false,
    crate_root: false,
};
const CRATE_ROOT: FileScope = FileScope {
    determinism: false,
    observability: false,
    hot_path: false,
    hot_config: false,
    crate_root: true,
};

// ---- determinism family ------------------------------------------------

#[test]
fn determinism_bad_fires_every_rule() {
    let d = lint_fixture("bad/determinism.rs", DETERMINISM);
    assert_eq!(
        rules_fired(&d),
        ["hash-collection", "ptr-format", "thread", "wall-clock"],
        "{d:?}"
    );
    assert!(d.iter().all(|d| d.severity == Severity::Error));
}

#[test]
fn determinism_good_is_silent() {
    let d = lint_fixture("good/determinism.rs", DETERMINISM);
    assert!(d.is_empty(), "{d:?}");
}

// ---- panic-freedom family ----------------------------------------------

#[test]
fn hot_path_bad_fires_panic_and_index_rules() {
    let d = lint_fixture("bad/hot_path.rs", HOT_PATH);
    let panics = d.iter().filter(|d| d.rule == "hot-path-panic").count();
    let indexes = d.iter().filter(|d| d.rule == "hot-path-index").count();
    // unwrap, expect, panic!, todo!, unimplemented! — one each.
    assert_eq!(panics, 5, "{d:?}");
    // buf[0] and &buf[from..] — one each.
    assert_eq!(indexes, 2, "{d:?}");
    assert_eq!(d.len(), panics + indexes, "{d:?}");
}

#[test]
fn hot_path_good_is_silent_including_its_test_module() {
    let d = lint_fixture("good/hot_path.rs", HOT_PATH);
    assert!(d.is_empty(), "{d:?}");
}

// ---- config-clone family (PR 6) ----------------------------------------

#[test]
fn hot_config_bad_fires_on_every_config_clone() {
    let d = lint_fixture("bad/hot_config.rs", HOT_CONFIG);
    // self.cfg.cost.clone(), self.cfg.clone(), degrade.clone(),
    // config.clone() — one each.
    assert_eq!(d.len(), 4, "{d:?}");
    assert!(d.iter().all(|d| d.rule == "hot-config-clone"));
}

#[test]
fn hot_config_good_is_silent() {
    let d = lint_fixture("good/hot_config.rs", HOT_CONFIG);
    assert!(d.is_empty(), "{d:?}");
}

// ---- observability family ----------------------------------------------

#[test]
fn output_bad_fires_on_every_direct_print() {
    let d = lint_fixture("bad/output.rs", OBSERVABILITY);
    // println!, eprintln!, print!, eprint!, dbg! — one each.
    assert_eq!(d.len(), 5, "{d:?}");
    assert!(d.iter().all(|d| d.rule == "direct-output"));
}

#[test]
fn output_good_is_silent() {
    let d = lint_fixture("good/output.rs", OBSERVABILITY);
    assert!(d.is_empty(), "{d:?}");
}

// ---- suppressions ------------------------------------------------------

#[test]
fn suppression_misuse_is_diagnosed() {
    let d = lint_fixture("bad/suppression.rs", DETERMINISM);
    // A justification-less allow is an error and silences nothing.
    assert!(
        d.iter().any(|d| d.rule == "bad-suppression"
            && d.severity == Severity::Error
            && d.message.contains("justification")),
        "{d:?}"
    );
    // An unknown rule name is an error.
    assert!(
        d.iter().any(|d| d.rule == "bad-suppression"
            && d.severity == Severity::Error
            && d.message.contains("unknown rule")),
        "{d:?}"
    );
    // None of the three HashMap findings is silenced.
    assert_eq!(
        d.iter().filter(|d| d.rule == "hash-collection").count(),
        3,
        "{d:?}"
    );
    // A well-formed suppression of the wrong rule silences nothing; a
    // stale suppression is a hard error so they cannot accumulate.
    assert!(
        d.iter().any(|d| d.rule == "bad-suppression"
            && d.severity == Severity::Error
            && d.message.contains("matches no diagnostic")),
        "{d:?}"
    );
}

#[test]
fn justified_suppressions_are_clean() {
    let d = lint_fixture("good/suppression.rs", DETERMINISM);
    assert!(d.is_empty(), "{d:?}");
}

// ---- unsafe-code hygiene -----------------------------------------------

#[test]
fn missing_forbid_unsafe_is_flagged_on_crate_roots() {
    let d = lint_fixture("bad/unsafe_attr.rs", CRATE_ROOT);
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].rule, "unsafe-attr");
    let d = lint_fixture("good/unsafe_attr.rs", CRATE_ROOT);
    assert!(d.is_empty(), "{d:?}");
}

// ---- resync spec-vs-code -----------------------------------------------

#[test]
fn resync_fixture_tables_cross_check() {
    let rx_good = fixture("good/resync_rx.rs");
    let inv_good = fixture("good/resync_invariant.rs");
    assert!(resync::cross_check(&rx_good, &inv_good).is_empty());

    // An edge the engine emits but the spec rejects.
    let d = resync::cross_check(&fixture("bad/resync_rx.rs"), &inv_good);
    assert_eq!(d.len(), 1, "{d:?}");
    assert!(d[0].message.contains("Tracking->Offloading"), "{d:?}");
    assert!(d[0].message.contains("rejects it"), "{d:?}");

    // An edge the engine emits that the spec dropped.
    let d = resync::cross_check(&rx_good, &fixture("bad/resync_invariant.rs"));
    assert_eq!(d.len(), 1, "{d:?}");
    assert!(d[0].message.contains("Tracking->Searching"), "{d:?}");
}

/// The expected §4.3 edge set, sorted the way `pair_phases` sorts.
const EXPECTED_EDGES: &[(&str, &str)] = &[
    ("Confirmed", "Offloading"),
    ("Confirmed", "Searching"),
    ("Offloading", "Searching"),
    ("Searching", "Tracking"),
    ("Tracking", "Confirmed"),
    ("Tracking", "Searching"),
];

#[test]
fn real_resync_tables_match_and_are_pinned() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let rx = fs::read_to_string(root.join("crates/core/src/rx.rs")).unwrap();
    let inv = fs::read_to_string(root.join("crates/scenario/src/invariant.rs")).unwrap();

    let expected: Vec<(String, String)> = EXPECTED_EDGES
        .iter()
        .map(|&(a, b)| (a.to_string(), b.to_string()))
        .collect();
    assert_eq!(resync::extract_rx_table(&rx).unwrap(), expected);
    assert_eq!(resync::extract_invariant_table(&inv).unwrap(), expected);

    let d = resync::cross_check(&rx, &inv);
    assert!(d.is_empty(), "{d:?}");
}

// ---- the workspace satisfies its own lint ------------------------------

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root);
    assert!(report.files > 50, "walked only {} files", report.files);
    // The call graph must span the whole workspace (14 member crates plus
    // the root package) and keep every annotated hot-path root.
    assert_eq!(report.graph.crates, 15, "crates in graph: {}", report.graph.crates);
    assert!(report.graph.entries >= 10, "hot-path entries: {}", report.graph.entries);
    assert!(report.graph.fns > 1000, "fns: {}", report.graph.fns);
    assert!(report.graph.edges > 2000, "edges: {}", report.graph.edges);
    assert_eq!(
        report.errors(),
        0,
        "workspace has lint errors:\n{}",
        report
            .diags
            .iter()
            .map(|d| format!("{}:{}:{} [{}] {}", d.file, d.line, d.col, d.rule, d.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(report.warnings(), 0, "workspace has unused suppressions");
}
