//! Property test for the item extractor: over generated programs mixing
//! free fns, impl methods, nested modules, body-nested fns, `cfg(test)`
//! modules, comments, and strings, every real `fn` becomes exactly one
//! extracted item — no double-counting, no misses, no test-code leakage.

use ano_lint::parser::parse_file;
use ano_testkit::gen::vec_u8;

/// Builds a source file from a byte script; returns it with the number of
/// items the parser is expected to extract.
fn build_source(script: &[u8]) -> (String, usize) {
    let mut src = String::from("//! generated fixture\n");
    let mut expected = 0usize;
    for (i, &b) in script.iter().enumerate() {
        match b % 6 {
            0 => {
                // The string literal and comment both mention `fn` but
                // contribute nothing.
                src.push_str(&format!(
                    "pub fn free_{i}() {{ let _s = \"fn not_code()\"; }} // fn ghost\n"
                ));
                expected += 1;
            }
            1 => {
                let k = (b as usize / 6) % 3 + 1;
                src.push_str(&format!("struct T{i};\nimpl T{i} {{\n"));
                for m in 0..k {
                    src.push_str(&format!("    fn m{m}(&self) {{}}\n"));
                }
                src.push_str("}\n");
                expected += k;
            }
            2 => {
                let k = (b as usize / 6) % 2 + 1;
                src.push_str(&format!("mod m{i} {{\n"));
                for m in 0..k {
                    src.push_str(&format!("    pub fn g{m}() {{}}\n"));
                }
                src.push_str("}\n");
                expected += k;
            }
            3 => {
                src.push_str(&format!(
                    "#[cfg(test)]\nmod t{i} {{\n    #[test]\n    fn case() {{ assert!(true); }}\n}}\n"
                ));
            }
            4 => src.push_str("// commented-out fn ghost() {}\n"),
            _ => {
                src.push_str(&format!("fn outer_{i}() {{ fn inner() {{}} inner(); }}\n"));
                expected += 2;
            }
        }
    }
    (src, expected)
}

ano_testkit::prop_test! {
    cases = 64;
    fn every_fn_token_is_exactly_one_item(script in vec_u8(0..48)) {
        let (src, expected) = build_source(&script);
        let p = parse_file("crates/x/src/lib.rs", "x", &[], &src);
        assert_eq!(p.fns.len(), expected, "source:\n{src}");
        let mut ids: Vec<&str> = p.fns.iter().map(|f| f.id.as_str()).collect();
        ids.sort();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate fn ids: {ids:?}\nsource:\n{src}");
    }
}
