//! Workspace-level self-tests for the call-graph analysis, driven by the
//! fixture mini-workspace in `fixtures/graph`: a cross-module panic chain,
//! a cross-crate taint chain, a cold-cut allocation, and a `cfg(test)`
//! false-positive guard.

use std::path::{Path, PathBuf};

use ano_lint::engine::{lint_workspace, Report};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/graph")
}

fn report() -> Report {
    lint_workspace(&fixture_root())
}

/// Chain hops are `fn-id (file:line)`; strip the location for comparisons.
fn chain_ids(chain: &[String]) -> Vec<&str> {
    chain
        .iter()
        .map(|h| h.split(" (").next().unwrap_or(h))
        .collect()
}

#[test]
fn fixture_graph_covers_both_crates() {
    let r = report();
    assert_eq!(r.files, 4, "alpha lib+frame, beta lib+clock");
    assert_eq!(r.graph.crates, 2);
    assert_eq!(r.graph.entries, 1);
    // pump, rebuild, split, header_byte, sample, stamp — and nothing from
    // the cfg(test) module in frame.rs.
    assert_eq!(r.graph.fns, 6, "cfg(test) items must be pruned");
}

#[test]
fn cross_module_panic_chain_lands_on_the_seed_line() {
    let r = report();
    let panics: Vec<_> = r
        .diags
        .iter()
        .filter(|d| d.rule == "transitive-panic")
        .collect();
    // Exactly one: the unwrap inside the cfg(test) module must not show up.
    assert_eq!(panics.len(), 1, "{panics:?}");
    let d = panics[0];
    assert_eq!(d.file, "crates/alpha/src/frame.rs");
    assert!(d.message.contains("`slice-index`"), "{}", d.message);
    assert!(
        d.message.contains("hot-path entry `alpha::pump`"),
        "{}",
        d.message
    );
    assert!(d.message.contains("2 calls deep"), "{}", d.message);
    assert_eq!(
        chain_ids(&d.chain),
        ["alpha::pump", "alpha::frame::split", "alpha::frame::header_byte"]
    );
}

#[test]
fn cross_crate_taint_chain_is_reported() {
    let r = report();
    let taints: Vec<_> = r
        .diags
        .iter()
        .filter(|d| d.rule == "transitive-nondet")
        .collect();
    assert_eq!(taints.len(), 1, "{taints:?}");
    let d = taints[0];
    assert_eq!(d.file, "crates/beta/src/clock.rs");
    assert!(d.message.contains("std::time::Instant"), "{}", d.message);
    assert_eq!(
        chain_ids(&d.chain),
        ["alpha::pump", "beta::clock::sample", "beta::clock::stamp"]
    );
}

#[test]
fn cold_fn_cuts_the_alloc_walk() {
    let r = report();
    let allocs: Vec<_> = r.diags.iter().filter(|d| d.rule == "hot-alloc").collect();
    // split's `.to_vec()` is hot; rebuild's identical `.to_vec()` sits
    // behind a `cold(...)` boundary and must not be found.
    assert_eq!(allocs.len(), 1, "{allocs:?}");
    assert_eq!(allocs[0].file, "crates/alpha/src/frame.rs");
    assert_eq!(chain_ids(&allocs[0].chain), ["alpha::pump", "alpha::frame::split"]);

    assert_eq!(r.alloc_report.len(), 1, "{:?}", r.alloc_report);
    let a = &r.alloc_report[0];
    assert_eq!(a.in_fn, "alpha::frame::split");
    assert_eq!(a.what, ".to_vec()");
    assert_eq!(a.entries, 1);
    assert_eq!(a.depth, 1);
    assert!(!a.suppressed);
}

#[test]
fn entry_fns_are_not_dead_exports() {
    let r = report();
    // `pump` has no caller inside the fixture workspace, but it is a
    // declared `entry(hot-path)` root; `rebuild`/`split`/`sample` are
    // called. No dead-export findings at all.
    assert!(
        r.diags.iter().all(|d| d.rule != "dead-export"),
        "{:?}",
        r.diags
    );
}
