//! The workspace engine: file discovery, per-crate rule scoping, and the
//! top-level `lint_workspace` entry point.
//!
//! Scoping policy (see DESIGN.md "Static analysis"):
//!
//! * **determinism** rules cover every crate whose code can reach traces,
//!   golden files, or the simulated schedule;
//! * **observability** rules cover every library crate except `bench`
//!   (a measurement harness whose stdout *is* its deliverable) and `lint`
//!   (this tool — its stdout is the diagnostic report);
//! * **panic-freedom** rules cover only the per-packet hot paths;
//! * **hot-config-clone** covers per-event dispatch loops: the panic-freedom
//!   hot paths plus the stack runtime (`crates/stack/src/runtime.rs`);
//! * **unsafe-attr** covers every crate root;
//! * test modules (`#[cfg(test)]`), `tests/`, `benches/`, and `examples/`
//!   are out of scope entirely — the engine only walks `src/`.

use std::fs;
use std::path::{Path, PathBuf};

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{lex, LineIndex};
use crate::resync;
use crate::rules::{run_token_rules, test_spans, FileCtx, FileScope};
use crate::suppress;

/// Crates whose code can affect traces, golden files, or scheduling.
/// `crypto`, `accel`, and `testkit` are pure functions of their inputs;
/// `bench` wraps wall-clock measurement by design; `lint` is this tool.
const DETERMINISM_CRATES: &[&str] = &[
    "sim", "tcp", "core", "tls", "nvme", "stack", "trace", "scenario", "apps",
];

/// Library crates allowed to write to stdout/stderr directly.
const OBSERVABILITY_EXEMPT: &[&str] = &["bench", "lint"];

/// Per-packet hot paths where a panic aborts the whole schedule
/// (workspace-relative paths). `fault.rs` qualifies because `on_op` sits
/// on the install and resync-mailbox paths and its empty-plan
/// short-circuit is consulted for every op even in fault-free runs.
const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/rx.rs",
    "crates/core/src/tx.rs",
    "crates/core/src/fault.rs",
    "crates/tcp/src/sender.rs",
    "crates/tcp/src/receiver.rs",
];

/// Files with a per-event dispatch loop where cloning a config struct is a
/// hidden per-event heap allocation (the PR 6 hot-path allocation bug class).
/// Every panic-freedom hot path qualifies, plus `runtime.rs`: it is *not* in
/// [`HOT_PATH_FILES`] (its world-construction asserts are deliberate), but
/// its `dispatch`/`pump_conn` loops run per event and must split-borrow
/// `WorldConfig` rather than clone it.
const HOT_CONFIG_FILES: &[&str] = &["crates/stack/src/runtime.rs"];

/// Derives the rule scope for one file.
pub fn scope_for(crate_name: &str, rel_path: &str, is_crate_root: bool) -> FileScope {
    let hot_path = HOT_PATH_FILES.contains(&rel_path);
    FileScope {
        determinism: DETERMINISM_CRATES.contains(&crate_name),
        observability: !OBSERVABILITY_EXEMPT.contains(&crate_name),
        hot_path,
        hot_config: hot_path || HOT_CONFIG_FILES.contains(&rel_path),
        crate_root: is_crate_root,
    }
}

/// Lints one file's source under the given scope: token rules filtered
/// through inline suppressions, plus suppression-syntax diagnostics.
pub fn lint_source(rel_path: &str, src: &str, scope: FileScope) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let lines = LineIndex::new(src);
    let spans = test_spans(&lexed);
    let ctx = FileCtx {
        path: rel_path,
        lexed: &lexed,
        lines: &lines,
        test_spans: &spans,
    };
    let raw = run_token_rules(&ctx, scope);
    let mut sup = suppress::parse(rel_path, &lexed, &lines);
    let mut out = suppress::apply(rel_path, &mut sup, raw);
    out.extend(sup.diags);
    out
}

/// Result of a whole-workspace run.
pub struct Report {
    pub diags: Vec<Diagnostic>,
    pub files: usize,
}

impl Report {
    pub fn errors(&self) -> usize {
        self.diags.iter().filter(|d| d.severity == Severity::Error).count()
    }

    pub fn warnings(&self) -> usize {
        self.diags.iter().filter(|d| d.severity == Severity::Warning).count()
    }
}

/// Lints the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> Report {
    let mut diags = Vec::new();
    let mut files = 0usize;

    for (crate_name, src_dir) in crate_src_dirs(root, &mut diags) {
        let mut rs_files = Vec::new();
        collect_rs_files(&src_dir, &mut rs_files);
        rs_files.sort();
        for path in rs_files {
            files += 1;
            let rel = rel_path(root, &path);
            let is_root = {
                let fname = path.file_name().and_then(|s| s.to_str()).unwrap_or("");
                let parent = path
                    .parent()
                    .and_then(|p| p.file_name())
                    .and_then(|s| s.to_str())
                    .unwrap_or("");
                // Crate roots: src/lib.rs, src/main.rs, src/bin/*.rs.
                (parent == "src" && (fname == "lib.rs" || fname == "main.rs"))
                    || parent == "bin"
            };
            let scope = scope_for(&crate_name, &rel, is_root);
            match fs::read_to_string(&path) {
                Ok(src) => diags.extend(lint_source(&rel, &src, scope)),
                Err(e) => diags.push(io_diag(&rel, format!("cannot read file: {e}"))),
            }
        }
    }

    // Spec-vs-code: the resync transition table.
    let rx_path = root.join("crates/core/src/rx.rs");
    let inv_path = root.join("crates/scenario/src/invariant.rs");
    match (fs::read_to_string(&rx_path), fs::read_to_string(&inv_path)) {
        (Ok(rx), Ok(inv)) => diags.extend(resync::cross_check(&rx, &inv)),
        (Err(e), _) => diags.push(io_diag("crates/core/src/rx.rs", format!("cannot read: {e}"))),
        (_, Err(e)) => diags.push(io_diag(
            "crates/scenario/src/invariant.rs",
            format!("cannot read: {e}"),
        )),
    }

    // Deterministic report order (the lint must satisfy its own standard).
    diags.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
    });
    Report { diags, files }
}

fn io_diag(file: &str, message: String) -> Diagnostic {
    Diagnostic {
        rule: "io",
        severity: Severity::Error,
        file: file.to_string(),
        line: 1,
        col: 1,
        message,
    }
}

/// `(crate_name, src_dir)` for every workspace member plus the root
/// package, in sorted order.
fn crate_src_dirs(root: &Path, diags: &mut Vec<Diagnostic>) -> Vec<(String, PathBuf)> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    match fs::read_dir(&crates) {
        Ok(rd) => {
            let mut dirs: Vec<PathBuf> = rd.filter_map(|e| e.ok().map(|e| e.path())).collect();
            dirs.sort();
            for d in dirs {
                let src = d.join("src");
                if src.is_dir() {
                    let name = d
                        .file_name()
                        .and_then(|s| s.to_str())
                        .unwrap_or_default()
                        .to_string();
                    out.push((name, src));
                }
            }
        }
        Err(e) => diags.push(io_diag("crates", format!("cannot list workspace crates: {e}"))),
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        out.push(("root".to_string(), root_src));
    }
    out
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = fs::read_dir(dir) else {
        return;
    };
    for e in rd.filter_map(Result::ok) {
        let p = e.path();
        if p.is_dir() {
            collect_rs_files(&p, out);
        } else if p.extension().and_then(|s| s.to_str()) == Some("rs") {
            out.push(p);
        }
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoping_table() {
        let s = scope_for("core", "crates/core/src/rx.rs", false);
        assert!(s.determinism && s.observability && s.hot_path && !s.crate_root);
        let s = scope_for("crypto", "crates/crypto/src/aes.rs", false);
        assert!(!s.determinism && s.observability);
        let s = scope_for("bench", "crates/bench/src/micro.rs", false);
        assert!(!s.determinism && !s.observability);
        let s = scope_for("tcp", "crates/tcp/src/lib.rs", true);
        assert!(s.determinism && s.crate_root && !s.hot_path);
        // PR 5: the device-fault layer is hot-path (empty-plan check runs
        // per op) and the chaos matrix is determinism-scoped via its crate.
        let s = scope_for("core", "crates/core/src/fault.rs", false);
        assert!(s.determinism && s.hot_path);
        let s = scope_for("scenario", "crates/scenario/src/chaos.rs", false);
        assert!(s.determinism && !s.hot_path);
        // PR 6: runtime.rs is config-clone scoped but not panic-freedom
        // scoped (its construction asserts are deliberate); panic-freedom
        // hot paths are config-clone scoped too.
        let s = scope_for("stack", "crates/stack/src/runtime.rs", false);
        assert!(s.hot_config && !s.hot_path);
        let s = scope_for("core", "crates/core/src/tx.rs", false);
        assert!(s.hot_config && s.hot_path);
        let s = scope_for("stack", "crates/stack/src/world.rs", false);
        assert!(!s.hot_config);
    }

    #[test]
    fn lint_source_end_to_end() {
        let src = "#![forbid(unsafe_code)]\nuse std::collections::BTreeMap;\n";
        let scope = FileScope {
            determinism: true,
            observability: true,
            hot_path: false,
            hot_config: false,
            crate_root: true,
        };
        assert!(lint_source("x.rs", src, scope).is_empty());
    }
}
