//! The workspace engine: file discovery, per-crate rule scoping, and the
//! top-level `lint_workspace` entry point.
//!
//! Scoping policy (see DESIGN.md "Static analysis"):
//!
//! * **determinism** rules cover every crate whose code can reach traces,
//!   golden files, or the simulated schedule;
//! * **observability** rules cover every library crate except `bench`
//!   (a measurement harness whose stdout *is* its deliverable) and `lint`
//!   (this tool — its stdout is the diagnostic report);
//! * **panic-freedom** rules cover only the per-packet hot paths;
//! * **hot-config-clone** covers per-event dispatch loops: the panic-freedom
//!   hot paths plus the stack runtime (`crates/stack/src/runtime.rs`);
//! * **unsafe-attr** covers every crate root;
//! * test modules (`#[cfg(test)]`), `tests/`, `benches/`, and `examples/`
//!   are out of scope for *rules* — the engine only runs them on `src/` —
//!   but their identifier usage still counts for the dead-export pass.
//!
//! The workspace run is two-phase. Phase one lexes every `src/` file,
//! runs the token rules, parses items/call-sites, and collects the file's
//! suppressions. Phase two is workspace-global: build the cross-crate call
//! graph, propagate panic/nondet/alloc facts from `entry(hot-path)` roots,
//! run the dead-export pass, cross-check the resync table, and only then
//! apply suppressions — so a stale allow is judged against *every* pass,
//! not just the per-file ones.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::diag::{Diagnostic, Severity};
use crate::facts::{self, AllocEntry};
use crate::graph;
use crate::lexer::{lex, LineIndex, TokenKind};
use crate::parser::{self, ParsedFile};
use crate::resync;
use crate::rules::{run_token_rules, test_spans, FileCtx, FileScope};
use crate::suppress::{self, Suppressions};

/// Crates whose code can affect traces, golden files, or scheduling.
/// `crypto`, `accel`, and `testkit` are pure functions of their inputs;
/// `bench` wraps wall-clock measurement by design; `lint` is this tool.
const DETERMINISM_CRATES: &[&str] = &[
    "sim", "tcp", "core", "tls", "nvme", "stack", "trace", "scenario", "apps",
];

/// Library crates allowed to write to stdout/stderr directly.
const OBSERVABILITY_EXEMPT: &[&str] = &["bench", "lint"];

/// Per-packet hot paths where a panic aborts the whole schedule
/// (workspace-relative paths). `fault.rs` qualifies because `on_op` sits
/// on the install and resync-mailbox paths and its empty-plan
/// short-circuit is consulted for every op even in fault-free runs.
const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/rx.rs",
    "crates/core/src/tx.rs",
    "crates/core/src/fault.rs",
    "crates/tcp/src/sender.rs",
    "crates/tcp/src/receiver.rs",
];

/// Files with a per-event dispatch loop where cloning a config struct is a
/// hidden per-event heap allocation (the PR 6 hot-path allocation bug class).
/// Every panic-freedom hot path qualifies, plus `runtime.rs`: it is *not* in
/// [`HOT_PATH_FILES`] (its world-construction asserts are deliberate), but
/// its `dispatch`/`pump_conn` loops run per event and must split-borrow
/// `WorldConfig` rather than clone it.
const HOT_CONFIG_FILES: &[&str] = &["crates/stack/src/runtime.rs"];

/// Derives the rule scope for one file.
pub fn scope_for(crate_name: &str, rel_path: &str, is_crate_root: bool) -> FileScope {
    let hot_path = HOT_PATH_FILES.contains(&rel_path);
    FileScope {
        determinism: DETERMINISM_CRATES.contains(&crate_name),
        observability: !OBSERVABILITY_EXEMPT.contains(&crate_name),
        hot_path,
        hot_config: hot_path || HOT_CONFIG_FILES.contains(&rel_path),
        crate_root: is_crate_root,
    }
}

/// Lints one file's source under the given scope: token rules filtered
/// through inline suppressions, plus suppression-syntax diagnostics.
/// Per-file view only — no call-graph passes (use [`lint_workspace`]).
pub fn lint_source(rel_path: &str, src: &str, scope: FileScope) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let lines = LineIndex::new(src);
    let spans = test_spans(&lexed);
    let ctx = FileCtx {
        path: rel_path,
        lexed: &lexed,
        lines: &lines,
        test_spans: &spans,
    };
    let raw = run_token_rules(&ctx, scope);
    let mut sup = suppress::parse(rel_path, &lexed, &lines);
    let mut out = suppress::apply(&mut sup, raw);
    out.extend(suppress::stale_diags(rel_path, &sup));
    out.extend(sup.diags);
    out
}

/// Call-graph shape summary, printed with the report so coverage drift
/// (crates falling out of the graph, resolution rate collapsing) is
/// visible in CI logs.
#[derive(Clone, Copy, Debug, Default)]
pub struct GraphStats {
    pub fns: usize,
    pub edges: usize,
    pub unresolved: usize,
    pub crates: usize,
    pub entries: usize,
}

/// Result of a whole-workspace run.
pub struct Report {
    pub diags: Vec<Diagnostic>,
    pub files: usize,
    /// Ranked allocation-site inventory (`--alloc-report`).
    pub alloc_report: Vec<AllocEntry>,
    pub graph: GraphStats,
    /// `(pass name, milliseconds)` in execution order (`--timing`).
    pub timings: Vec<(&'static str, f64)>,
}

impl Report {
    pub fn errors(&self) -> usize {
        self.diags.iter().filter(|d| d.severity == Severity::Error).count()
    }

    pub fn warnings(&self) -> usize {
        self.diags.iter().filter(|d| d.severity == Severity::Warning).count()
    }
}

/// Per-file state carried between the two phases.
struct FileEntry {
    rel: String,
    sup: Suppressions,
    /// Token-rule findings awaiting workspace-level suppression.
    raw: Vec<Diagnostic>,
    /// Parse diagnostics (bad annotations) — not suppressible.
    parse_diags: Vec<Diagnostic>,
}

/// Lints the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> Report {
    let mut entries: Vec<FileEntry> = Vec::new();
    let mut parsed: Vec<ParsedFile> = Vec::new();
    let mut io_errors: Vec<Diagnostic> = Vec::new();
    let mut files = 0usize;
    let mut timings = Vec::new();

    // Phase 1: per-file — lex once, token rules + suppressions + parse.
    let t = Instant::now();
    for (crate_name, src_dir) in crate_src_dirs(root, &mut io_errors) {
        let mut rs_files = Vec::new();
        collect_rs_files(&src_dir, &mut rs_files);
        rs_files.sort();
        for path in rs_files {
            files += 1;
            let rel = rel_path(root, &path);
            let src = match fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    io_errors.push(io_diag(&rel, format!("cannot read file: {e}")));
                    continue;
                }
            };
            let is_root = {
                let fname = path.file_name().and_then(|s| s.to_str()).unwrap_or("");
                let parent = path
                    .parent()
                    .and_then(|p| p.file_name())
                    .and_then(|s| s.to_str())
                    .unwrap_or("");
                // Crate roots: src/lib.rs, src/main.rs, src/bin/*.rs.
                (parent == "src" && (fname == "lib.rs" || fname == "main.rs"))
                    || parent == "bin"
            };
            let scope = scope_for(&crate_name, &rel, is_root);
            let lexed = lex(&src);
            let lines = LineIndex::new(&src);
            let spans = test_spans(&lexed);
            let ctx = FileCtx {
                path: &rel,
                lexed: &lexed,
                lines: &lines,
                test_spans: &spans,
            };
            let raw = run_token_rules(&ctx, scope);
            let sup = suppress::parse(&rel, &lexed, &lines);
            let file_mod = module_path(&rel);
            let pf = parser::parse_file(&rel, &crate_name, &file_mod, &src);
            entries.push(FileEntry {
                rel,
                sup,
                raw,
                parse_diags: pf.diags.clone(),
            });
            parsed.push(pf);
        }
    }
    timings.push(("parse+token-rules", ms(t)));

    // Phase 2a: identifier usage in trees the rules do not cover —
    // tests/, benches/, examples/ — feeds the dead-export pass only.
    let t = Instant::now();
    let extra_idents = extra_ident_counts(root);
    timings.push(("usage-scan", ms(t)));

    // Phase 2b: the cross-crate call graph.
    let t = Instant::now();
    let g = graph::build(&parsed);
    let stats = GraphStats {
        fns: g.nodes.len(),
        edges: g.edge_count(),
        unresolved: g.unresolved.len(),
        crates: g.crates.len(),
        entries: g.entries().len(),
    };
    timings.push(("call-graph", ms(t)));

    // Phase 2c: fact propagation. The allow callback routes each seed
    // through its file's suppressions (same audited allows as the
    // syntactic rules), marking them used.
    let t = Instant::now();
    let by_rel: BTreeMap<String, usize> = entries
        .iter()
        .enumerate()
        .map(|(i, e)| (e.rel.clone(), i))
        .collect();
    let fr = facts::analyze(&g, |file, line, rules| {
        by_rel
            .get(file)
            .map(|&i| entries[i].sup.covers(line, rules))
            .unwrap_or(false)
    });
    timings.push(("fact-propagation", ms(t)));

    // Phase 2d: dead exports (fns from the graph, other pub items from the
    // parsed files), against src + tests/benches/examples usage.
    let t = Instant::now();
    let mut ident_totals: BTreeMap<String, usize> = BTreeMap::new();
    for p in &parsed {
        for (k, v) in &p.ident_counts {
            *ident_totals.entry(k.clone()).or_insert(0) += v;
        }
    }
    let mut dead = facts::dead_exports(&g, &ident_totals, &extra_idents);
    let items: Vec<(String, &'static str, String, usize)> = parsed
        .iter()
        .flat_map(|p| {
            p.pub_items
                .iter()
                .map(|it| (it.name.clone(), it.kind, p.path.clone(), it.line))
        })
        .collect();
    dead.extend(facts::dead_pub_items(&items, &ident_totals, &extra_idents));
    timings.push(("dead-export", ms(t)));

    // Phase 2e: spec-vs-code — the resync transition table.
    let t = Instant::now();
    let mut resync_diags = Vec::new();
    let rx_path = root.join("crates/core/src/rx.rs");
    let inv_path = root.join("crates/scenario/src/invariant.rs");
    // The pass only applies to roots that carry the resync pair at all
    // (fixture workspaces don't); losing just *one* of the two files is
    // still an error — the cross-check exists to keep them in lockstep.
    if rx_path.is_file() || inv_path.is_file() {
        match (fs::read_to_string(&rx_path), fs::read_to_string(&inv_path)) {
            (Ok(rx), Ok(inv)) => resync_diags.extend(resync::cross_check(&rx, &inv)),
            (Err(e), _) => {
                io_errors.push(io_diag("crates/core/src/rx.rs", format!("cannot read: {e}")))
            }
            (_, Err(e)) => io_errors.push(io_diag(
                "crates/scenario/src/invariant.rs",
                format!("cannot read: {e}"),
            )),
        }
    }
    timings.push(("resync-check", ms(t)));

    // Suppression application, last: every suppressible finding (token
    // rules, transitive facts, dead exports, resync) is routed through its
    // file's suppressions; only then are stale allows judged.
    let t = Instant::now();
    let mut pending: Vec<Diagnostic> = Vec::new();
    for e in &mut entries {
        pending.append(&mut e.raw);
    }
    pending.extend(fr.diags);
    pending.extend(dead);
    pending.extend(resync_diags);

    let mut by_file: BTreeMap<usize, Vec<Diagnostic>> = BTreeMap::new();
    let mut diags: Vec<Diagnostic> = Vec::new();
    for d in pending {
        match by_rel.get(&d.file) {
            Some(&i) => by_file.entry(i).or_default().push(d),
            None => diags.push(d), // no suppression context for this path
        }
    }
    for (i, file_diags) in by_file {
        diags.extend(suppress::apply(&mut entries[i].sup, file_diags));
    }
    for e in &entries {
        diags.extend(suppress::stale_diags(&e.rel, &e.sup));
        diags.extend(e.sup.diags.iter().cloned());
        diags.extend(e.parse_diags.iter().cloned());
    }
    diags.extend(io_errors);
    timings.push(("suppressions", ms(t)));

    // Deterministic report order (the lint must satisfy its own standard).
    diags.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
    });
    Report {
        diags,
        files,
        alloc_report: fr.alloc_report,
        graph: stats,
        timings,
    }
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// Module path of a file within its crate: `crates/tcp/src/receiver.rs` →
/// `["receiver"]`, `src/foo/mod.rs` → `["foo"]`, crate roots → `[]`.
fn module_path(rel: &str) -> Vec<String> {
    let after_src = rel
        .strip_prefix("src/")
        .or_else(|| rel.split("/src/").nth(1))
        .unwrap_or(rel);
    let mut parts: Vec<&str> = after_src.split('/').collect();
    let Some(last) = parts.pop() else {
        return Vec::new();
    };
    let stem = last.strip_suffix(".rs").unwrap_or(last);
    let mut out: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
    match stem {
        "lib" | "main" | "mod" => {}
        _ => out.push(stem.to_string()),
    }
    // src/bin/name.rs is its own crate root, not a `bin::name` module.
    if out.first().map(String::as_str) == Some("bin") {
        return Vec::new();
    }
    out
}

/// Identifier usage counts from `tests/`, `benches/`, and `examples/`
/// trees of every crate and the workspace root. The dead-export pass
/// treats any mention there as use.
fn extra_ident_counts(root: &Path) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    let mut dirs: Vec<PathBuf> = Vec::new();
    for sub in ["tests", "benches", "examples"] {
        dirs.push(root.join(sub));
        if let Ok(rd) = fs::read_dir(root.join("crates")) {
            for e in rd.filter_map(Result::ok) {
                dirs.push(e.path().join(sub));
            }
        }
    }
    let mut rs = Vec::new();
    for d in dirs {
        if d.is_dir() {
            collect_rs_files(&d, &mut rs);
        }
    }
    rs.sort();
    for path in rs {
        let Ok(src) = fs::read_to_string(&path) else {
            continue;
        };
        for t in &lex(&src).tokens {
            if let TokenKind::Ident(name) = &t.kind {
                *out.entry(name.clone()).or_insert(0) += 1;
            }
        }
    }
    out
}

fn io_diag(file: &str, message: String) -> Diagnostic {
    Diagnostic {
        rule: "io",
        severity: Severity::Error,
        file: file.to_string(),
        line: 1,
        col: 1,
        message,
        chain: Vec::new(),
    }
}

/// `(crate_name, src_dir)` for every workspace member plus the root
/// package, in sorted order.
fn crate_src_dirs(root: &Path, diags: &mut Vec<Diagnostic>) -> Vec<(String, PathBuf)> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    match fs::read_dir(&crates) {
        Ok(rd) => {
            let mut dirs: Vec<PathBuf> = rd.filter_map(|e| e.ok().map(|e| e.path())).collect();
            dirs.sort();
            for d in dirs {
                let src = d.join("src");
                if src.is_dir() {
                    let name = d
                        .file_name()
                        .and_then(|s| s.to_str())
                        .unwrap_or_default()
                        .to_string();
                    out.push((name, src));
                }
            }
        }
        Err(e) => diags.push(io_diag("crates", format!("cannot list workspace crates: {e}"))),
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        out.push(("root".to_string(), root_src));
    }
    out
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = fs::read_dir(dir) else {
        return;
    };
    for e in rd.filter_map(Result::ok) {
        let p = e.path();
        if p.is_dir() {
            collect_rs_files(&p, out);
        } else if p.extension().and_then(|s| s.to_str()) == Some("rs") {
            out.push(p);
        }
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoping_table() {
        let s = scope_for("core", "crates/core/src/rx.rs", false);
        assert!(s.determinism && s.observability && s.hot_path && !s.crate_root);
        let s = scope_for("crypto", "crates/crypto/src/aes.rs", false);
        assert!(!s.determinism && s.observability);
        let s = scope_for("bench", "crates/bench/src/micro.rs", false);
        assert!(!s.determinism && !s.observability);
        let s = scope_for("tcp", "crates/tcp/src/lib.rs", true);
        assert!(s.determinism && s.crate_root && !s.hot_path);
        // PR 5: the device-fault layer is hot-path (empty-plan check runs
        // per op) and the chaos matrix is determinism-scoped via its crate.
        let s = scope_for("core", "crates/core/src/fault.rs", false);
        assert!(s.determinism && s.hot_path);
        let s = scope_for("scenario", "crates/scenario/src/chaos.rs", false);
        assert!(s.determinism && !s.hot_path);
        // PR 6: runtime.rs is config-clone scoped but not panic-freedom
        // scoped (its construction asserts are deliberate); panic-freedom
        // hot paths are config-clone scoped too.
        let s = scope_for("stack", "crates/stack/src/runtime.rs", false);
        assert!(s.hot_config && !s.hot_path);
        let s = scope_for("core", "crates/core/src/tx.rs", false);
        assert!(s.hot_config && s.hot_path);
        let s = scope_for("stack", "crates/stack/src/world.rs", false);
        assert!(!s.hot_config);
    }

    #[test]
    fn lint_source_end_to_end() {
        let src = "#![forbid(unsafe_code)]\nuse std::collections::BTreeMap;\n";
        let scope = FileScope {
            determinism: true,
            observability: true,
            hot_path: false,
            hot_config: false,
            crate_root: true,
        };
        assert!(lint_source("x.rs", src, scope).is_empty());
    }

    #[test]
    fn module_paths() {
        assert!(module_path("crates/tcp/src/lib.rs").is_empty());
        assert_eq!(module_path("crates/tcp/src/receiver.rs"), ["receiver"]);
        assert_eq!(module_path("src/main.rs"), Vec::<String>::new());
        assert_eq!(module_path("crates/x/src/foo/mod.rs"), ["foo"]);
        assert_eq!(module_path("crates/x/src/foo/bar.rs"), ["foo", "bar"]);
        assert!(module_path("crates/x/src/bin/tool.rs").is_empty());
    }
}
