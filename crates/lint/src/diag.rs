//! Diagnostics: severities, rendering (human text and machine JSON).

use std::fmt;

/// How bad a finding is. `Error` fails the build; `Warning` is advisory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding at a source position.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Rule identifier (`hash-collection`, `hot-path-panic`, …).
    pub rule: &'static str,
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based.
    pub line: usize,
    /// 1-based.
    pub col: usize,
    pub message: String,
    /// For transitive findings: the call chain from the entry point to the
    /// seed site, outermost first, each element `fn-id (file:line)`.
    /// Empty for per-file findings.
    pub chain: Vec<String>,
}

impl Diagnostic {
    /// `error[rule]: message\n  --> file:line:col` (rustc-style), with the
    /// call chain indented below when the finding is transitive.
    pub fn render_text(&self) -> String {
        let mut s = format!(
            "{}[{}]: {}\n  --> {}:{}:{}",
            self.severity, self.rule, self.message, self.file, self.line, self.col
        );
        for (i, hop) in self.chain.iter().enumerate() {
            s.push_str(&format!(
                "\n  {} {hop}",
                if i == 0 { "chain:" } else { "    ->" }
            ));
        }
        s
    }

    /// One JSON object on a single line (machine-readable output mode).
    /// Stable field order: rule, severity, file, line, col, message, chain.
    pub fn render_json(&self) -> String {
        let chain = self
            .chain
            .iter()
            .map(|c| format!("\"{}\"", json_escape(c)))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\",\"chain\":[{}]}}",
            json_escape(self.rule),
            self.severity,
            json_escape(&self.file),
            self.line,
            self.col,
            json_escape(&self.message),
            chain
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Diagnostic {
        Diagnostic {
            rule: "hash-collection",
            severity: Severity::Error,
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 7,
            message: "say \"no\"".into(),
            chain: Vec::new(),
        }
    }

    #[test]
    fn text_rendering() {
        assert_eq!(
            diag().render_text(),
            "error[hash-collection]: say \"no\"\n  --> crates/x/src/lib.rs:3:7"
        );
    }

    #[test]
    fn json_rendering_escapes() {
        let j = diag().render_json();
        assert!(j.contains("\"message\":\"say \\\"no\\\"\""), "{j}");
        assert!(j.ends_with("\"chain\":[]}"), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn chain_renders_in_text_and_json() {
        let mut d = diag();
        d.chain = vec![
            "stack::runtime::World::handle_packet (crates/stack/src/runtime.rs:300)".into(),
            "tcp::receiver::TcpReceiver::on_segment (crates/tcp/src/receiver.rs:121)".into(),
        ];
        let t = d.render_text();
        assert!(t.contains("chain: stack::runtime"), "{t}");
        assert!(t.contains("    -> tcp::receiver"), "{t}");
        let j = d.render_json();
        assert!(j.contains("\"chain\":[\"stack::runtime"), "{j}");
    }

    #[test]
    fn severity_order() {
        assert!(Severity::Error > Severity::Warning);
    }
}
