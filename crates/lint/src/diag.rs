//! Diagnostics: severities, rendering (human text and machine JSON).

use std::fmt;

/// How bad a finding is. `Error` fails the build; `Warning` is advisory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding at a source position.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Rule identifier (`hash-collection`, `hot-path-panic`, …).
    pub rule: &'static str,
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based.
    pub line: usize,
    /// 1-based.
    pub col: usize,
    pub message: String,
}

impl Diagnostic {
    /// `error[rule]: message\n  --> file:line:col` (rustc-style).
    pub fn render_text(&self) -> String {
        format!(
            "{}[{}]: {}\n  --> {}:{}:{}",
            self.severity, self.rule, self.message, self.file, self.line, self.col
        )
    }

    /// One JSON object on a single line (machine-readable output mode).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            json_escape(self.rule),
            self.severity,
            json_escape(&self.file),
            self.line,
            self.col,
            json_escape(&self.message)
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Diagnostic {
        Diagnostic {
            rule: "hash-collection",
            severity: Severity::Error,
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 7,
            message: "say \"no\"".into(),
        }
    }

    #[test]
    fn text_rendering() {
        assert_eq!(
            diag().render_text(),
            "error[hash-collection]: say \"no\"\n  --> crates/x/src/lib.rs:3:7"
        );
    }

    #[test]
    fn json_rendering_escapes() {
        let j = diag().render_json();
        assert!(j.contains("\"message\":\"say \\\"no\\\"\""), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn severity_order() {
        assert!(Severity::Error > Severity::Warning);
    }
}
