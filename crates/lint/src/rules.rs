//! The rule catalogue: token-stream checks, each grounded in a workspace
//! invariant (see DESIGN.md "Static analysis").
//!
//! Every rule reports with a stable id so inline suppressions
//! (`// ano-lint: allow(<rule>): <justification>`) can target it.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{Lexed, LineIndex, Token, TokenKind};

/// All rule ids a suppression may name (checked by the suppression parser).
pub const RULES: &[&str] = &[
    "wall-clock",
    "thread",
    "ptr-format",
    "hash-collection",
    "hot-path-panic",
    "hot-path-index",
    "hot-config-clone",
    "direct-output",
    "unsafe-attr",
    "resync-table",
    // Call-graph rules (see `graph` / `facts`): transitive facts reaching a
    // `// ano-lint: entry(hot-path)` fn, plus the dead-export pass.
    "transitive-panic",
    "transitive-nondet",
    "hot-alloc",
    "dead-export",
];

/// Which rule families apply to one file (derived from the per-crate
/// scoping table in [`crate::engine`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct FileScope {
    /// Determinism rules: the file can affect traces, golden files, or the
    /// simulated schedule, so process-varying constructs are forbidden.
    pub determinism: bool,
    /// Observability rules: library code must report through `ano-trace`,
    /// never stdout/stderr.
    pub observability: bool,
    /// Panic-freedom rules: the file is a per-packet hot path.
    pub hot_path: bool,
    /// Config-clone rules: the file contains a per-event dispatch loop, so
    /// cloning configuration structs (`cfg`/`cost`/`degrade`/`config`) is a
    /// hidden per-event heap allocation; split-borrow the config instead.
    pub hot_config: bool,
    /// The file is a crate root and must carry `#![forbid(unsafe_code)]`.
    pub crate_root: bool,
}

/// Per-file context handed to every rule.
pub struct FileCtx<'a> {
    pub path: &'a str,
    pub lexed: &'a Lexed,
    pub lines: &'a LineIndex,
    /// Byte ranges of `#[cfg(test)] mod … { … }` bodies; diagnostics inside
    /// are dropped (tests may panic, index, and print freely).
    pub test_spans: &'a [(usize, usize)],
}

impl FileCtx<'_> {
    fn in_test(&self, off: usize) -> bool {
        self.test_spans.iter().any(|&(a, b)| off >= a && off < b)
    }

    fn diag(&self, rule: &'static str, off: usize, message: String) -> Diagnostic {
        let (line, col) = self.lines.line_col(off);
        Diagnostic {
            rule,
            severity: Severity::Error,
            file: self.path.to_string(),
            line,
            col,
            message,
            chain: Vec::new(),
        }
    }
}

/// Rust keywords that can directly precede `[` without it being an index
/// expression (`&mut [u8]`, `as [u8; 2]`, `return [x]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "trait", "type", "unsafe", "use", "where", "while", "yield",
];

/// Runs every scoped token rule over one file.
pub fn run_token_rules(ctx: &FileCtx<'_>, scope: FileScope) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let toks = &ctx.lexed.tokens;

    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test(t.off) {
            continue;
        }
        match &t.kind {
            TokenKind::Ident(name) => {
                if scope.determinism {
                    determinism_ident(ctx, toks, i, name, &mut out);
                }
                if scope.hot_path {
                    hot_path_ident(ctx, toks, i, name, &mut out);
                }
                if scope.hot_config {
                    hot_config_ident(ctx, toks, i, name, &mut out);
                }
                if scope.observability {
                    observability_ident(ctx, toks, i, name, &mut out);
                }
            }
            TokenKind::Str(text) => {
                if scope.determinism && text.contains(":p}") {
                    out.push(ctx.diag(
                        "ptr-format",
                        t.off,
                        "pointer formatting (`{:p}`) leaks ASLR-dependent addresses into \
                         output; print a stable id instead"
                            .to_string(),
                    ));
                }
            }
            TokenKind::Punct('[') if scope.hot_path => {
                // Index expression: `expr[…]`. The previous token being an
                // identifier (non-keyword), `)`, or `]` means expression
                // position; type/attr/macro positions are preceded by
                // punctuation or keywords.
                let prev = if i > 0 { toks.get(i - 1) } else { None };
                let indexing = match prev.map(|p| &p.kind) {
                    Some(TokenKind::Ident(s)) => !NON_INDEX_KEYWORDS.contains(&s.as_str()),
                    Some(TokenKind::Punct(')')) | Some(TokenKind::Punct(']')) => true,
                    _ => false,
                };
                if indexing {
                    out.push(ctx.diag(
                        "hot-path-index",
                        t.off,
                        "slice indexing can panic mid-schedule in a per-packet hot path; \
                         use `get`/`get_mut` (or split/slice helpers) and handle the miss"
                            .to_string(),
                    ));
                }
            }
            _ => {}
        }
    }

    if scope.crate_root && !has_unsafe_attr(toks) {
        out.push(Diagnostic {
            rule: "unsafe-attr",
            severity: Severity::Error,
            file: ctx.path.to_string(),
            line: 1,
            col: 1,
            message: "crate root must carry `#![forbid(unsafe_code)]` (or \
                      `#![deny(unsafe_code)]` with a documented exception)"
                .to_string(),
            chain: Vec::new(),
        });
    }

    out
}

fn determinism_ident(
    ctx: &FileCtx<'_>,
    toks: &[Token],
    i: usize,
    name: &str,
    out: &mut Vec<Diagnostic>,
) {
    let off = toks[i].off;
    match name {
        "HashMap" | "HashSet" => out.push(ctx.diag(
            "hash-collection",
            off,
            format!(
                "{name} iteration order varies per process (SipHash keys are random); \
                 in a sim/trace-affecting crate use BTreeMap/Vec, or suppress with a \
                 justification proving it is never iterated"
            ),
        )),
        "Instant" | "SystemTime" => out.push(ctx.diag(
            "wall-clock",
            off,
            format!(
                "std::time::{name} reads the wall clock; sim/trace-affecting code must \
                 use ano_sim::time::SimTime so runs replay bit-identically"
            ),
        )),
        "thread" => {
            // `std::thread` or `thread::spawn(…)` — a real OS thread. Plain
            // variables named `thread` (no path context) are left alone.
            let after_std = i >= 2
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && i >= 3
                && toks[i - 3].ident() == Some("std");
            let before_path = toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'));
            if after_std || before_path {
                out.push(ctx.diag(
                    "thread",
                    off,
                    "OS threads introduce scheduling nondeterminism; the simulation is \
                     single-threaded by design (ano_sim::sched)"
                        .to_string(),
                ));
            }
        }
        _ => {}
    }
}

fn hot_path_ident(
    ctx: &FileCtx<'_>,
    toks: &[Token],
    i: usize,
    name: &str,
    out: &mut Vec<Diagnostic>,
) {
    let off = toks[i].off;
    match name {
        // `.unwrap()` / `.expect(…)` method calls (not `unwrap_or`,
        // `unwrap_seq`, … — those are distinct identifiers).
        "unwrap" | "expect" => {
            let is_method = i >= 1 && toks[i - 1].is_punct('.');
            if is_method {
                out.push(ctx.diag(
                    "hot-path-panic",
                    off,
                    format!(
                        ".{name}() can panic mid-schedule in a per-packet hot path; \
                         propagate the miss or fall back to software processing"
                    ),
                ));
            }
        }
        "panic" | "todo" | "unimplemented" => {
            let is_macro = toks.get(i + 1).is_some_and(|t| t.is_punct('!'));
            if is_macro {
                out.push(ctx.diag(
                    "hot-path-panic",
                    off,
                    format!(
                        "{name}! aborts the schedule from a per-packet hot path; \
                         degrade to software fallback instead"
                    ),
                ));
            }
        }
        _ => {}
    }
}

/// Receiver identifiers whose `.clone()` means "copy a config struct".
/// These are the workspace's conventional names for configuration values
/// (`WorldConfig` fields and locals bound from them).
const CONFIG_IDENTS: &[&str] = &["cfg", "config", "cost", "degrade"];

fn hot_config_ident(
    ctx: &FileCtx<'_>,
    toks: &[Token],
    i: usize,
    name: &str,
    out: &mut Vec<Diagnostic>,
) {
    // Pattern: `<config-ident> . clone (` — a method call cloning a value
    // named like a config. `cfg!(…)` and fields merely *named* clone do
    // not match (no `.`-call shape).
    if name != "clone" {
        return;
    }
    let is_method = i >= 2
        && toks[i - 1].is_punct('.')
        && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
    if !is_method {
        return;
    }
    let Some(recv) = toks[i - 2].ident() else { return };
    if CONFIG_IDENTS.contains(&recv) {
        out.push(ctx.diag(
            "hot-config-clone",
            toks[i].off,
            format!(
                "`{recv}.clone()` copies a config struct inside a per-event dispatch \
                 path (hidden heap allocation per event); split-borrow the config \
                 (`let cost = &self.cfg.cost;`) or hoist the clone out of the loop"
            ),
        ));
    }
}

fn observability_ident(
    ctx: &FileCtx<'_>,
    toks: &[Token],
    i: usize,
    name: &str,
    out: &mut Vec<Diagnostic>,
) {
    if matches!(name, "println" | "eprintln" | "print" | "eprint" | "dbg")
        && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
    {
        out.push(ctx.diag(
            "direct-output",
            toks[i].off,
            format!(
                "{name}! in library code bypasses the deterministic trace layer; \
                 record an ano_trace::Event or metric instead"
            ),
        ));
    }
}

/// True if the token stream contains `#![forbid(unsafe_code)]` or
/// `#![deny(unsafe_code)]`.
fn has_unsafe_attr(toks: &[Token]) -> bool {
    toks.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && matches!(w[3].ident(), Some("forbid") | Some("deny"))
            && w[4].is_punct('(')
            && w[5].ident() == Some("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    })
}

/// Computes the byte spans of `#[cfg(test)] mod … { … }` bodies.
pub fn test_spans(lexed: &Lexed) -> Vec<(usize, usize)> {
    let toks = &lexed.tokens;
    let mut spans = Vec::new();
    let mut i = 0;
    while i + 6 < toks.len() {
        let is_cfg_test = toks[i].is_punct('#')
            && toks[i + 1].is_punct('[')
            && toks[i + 2].ident() == Some("cfg")
            && toks[i + 3].is_punct('(')
            && toks[i + 4].ident() == Some("test")
            && toks[i + 5].is_punct(')')
            && toks[i + 6].is_punct(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip any further attributes, then expect `mod name {`.
        let mut j = i + 7;
        while toks.get(j).is_some_and(|t| t.is_punct('#')) {
            j = skip_group(toks, j + 1, '[', ']');
        }
        if toks.get(j).and_then(Token::ident) == Some("mod") {
            // Find the opening brace after the module name.
            let mut k = j + 1;
            while k < toks.len() && !toks[k].is_punct('{') {
                k += 1;
            }
            if k < toks.len() {
                let end = match_brace(toks, k);
                spans.push((toks[i].off, end));
                i = k;
                continue;
            }
        }
        i += 1;
    }
    spans
}

/// Given `idx` pointing at an `open` delimiter (or just past `#`), returns
/// the index one past its matching `close`.
fn skip_group(toks: &[Token], idx: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    let mut i = idx;
    while i < toks.len() {
        if toks[i].is_punct(open) {
            depth += 1;
        } else if toks[i].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    toks.len()
}

/// Given `idx` pointing at `{`, returns the byte offset one past the
/// matching `}` (or the last token's offset on imbalance).
fn match_brace(toks: &[Token], idx: usize) -> usize {
    let mut depth = 0usize;
    for t in &toks[idx..] {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return t.off + 1;
            }
        }
    }
    toks.last().map(|t| t.off + 1).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str, scope: FileScope) -> Vec<Diagnostic> {
        let lexed = lex(src);
        let lines = LineIndex::new(src);
        let spans = test_spans(&lexed);
        let ctx = FileCtx {
            path: "test.rs",
            lexed: &lexed,
            lines: &lines,
            test_spans: &spans,
        };
        run_token_rules(&ctx, scope)
    }

    const DET: FileScope = FileScope {
        determinism: true,
        observability: false,
        hot_path: false,
        hot_config: false,
        crate_root: false,
    };
    const HOT: FileScope = FileScope {
        determinism: false,
        observability: false,
        hot_path: true,
        hot_config: false,
        crate_root: false,
    };
    const HOT_CFG: FileScope = FileScope {
        determinism: false,
        observability: false,
        hot_path: false,
        hot_config: true,
        crate_root: false,
    };

    #[test]
    fn hashmap_fires_only_in_determinism_scope() {
        let src = "use std::collections::HashMap;";
        assert_eq!(run(src, DET).len(), 1);
        assert_eq!(run(src, DET)[0].rule, "hash-collection");
        assert!(run(src, HOT).is_empty());
    }

    #[test]
    fn hashmap_in_string_or_comment_is_fine() {
        assert!(run("// HashMap\nlet s = \"HashMap\";", DET).is_empty());
    }

    #[test]
    fn wall_clock_and_thread() {
        let d = run("let t = std::time::Instant::now(); std::thread::sleep(d);", DET);
        assert_eq!(d.len(), 2, "{d:?}");
        assert_eq!(d[0].rule, "wall-clock");
        assert_eq!(d[1].rule, "thread");
        // A local named `thread` with no path context is fine.
        assert!(run("let thread = 1; let x = thread + 1;", DET).is_empty());
    }

    #[test]
    fn ptr_format_in_string() {
        let d = run(r#"let s = format!("{:p}", &x);"#, DET);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "ptr-format");
    }

    #[test]
    fn unwrap_expect_only_as_methods() {
        let d = run("let x = y.unwrap(); let z = w.expect(\"msg\");", HOT);
        assert_eq!(d.len(), 2);
        // unwrap_or / unwrap_seq are different identifiers entirely.
        assert!(run("let x = y.unwrap_or(0); let s = unwrap_seq(a, b);", HOT).is_empty());
        // A function *named* unwrap without a dot is not a method call.
        assert!(run("fn unwrap() {}", HOT).is_empty());
    }

    #[test]
    fn panic_macros() {
        let d = run("panic!(\"boom\"); todo!(); unimplemented!();", HOT);
        assert_eq!(d.len(), 3);
        assert!(d.iter().all(|d| d.rule == "hot-path-panic"));
    }

    #[test]
    fn indexing_detection() {
        assert_eq!(run("let x = buf[0];", HOT).len(), 1);
        assert_eq!(run("let t = &carry[(a - b) as usize..];", HOT).len(), 1);
        assert_eq!(run("let y = f()[1];", HOT).len(), 1);
        // Not indexing: types, attributes, slice patterns, vec! macro.
        assert!(run("fn f(x: &mut [u8]) -> [u8; 2] { #[allow(dead_code)] let v = vec![1]; [0, 0] }", HOT).is_empty());
    }

    #[test]
    fn config_clone_detection() {
        let d = run("let cost = self.cfg.cost.clone();", HOT_CFG);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "hot-config-clone");
        assert_eq!(run("let c = cfg.clone(); let d = degrade.clone();", HOT_CFG).len(), 2);
        // Non-config receivers, cfg! the macro, and split-borrows are fine.
        assert!(run("let p = payload.clone(); let b = cfg!(test); let c = &self.cfg.cost;", HOT_CFG).is_empty());
        // A field access named clone (no call parens) is not a clone call.
        assert!(run("let x = cfg.clone;", HOT_CFG).is_empty());
        // Out of scope: nothing fires without the hot_config flag.
        assert!(run("let c = self.cfg.cost.clone();", HOT).is_empty());
    }

    #[test]
    fn direct_output() {
        let scope = FileScope {
            observability: true,
            ..Default::default()
        };
        let d = run("println!(\"x\"); dbg!(v); eprintln!(\"e\");", scope);
        assert_eq!(d.len(), 3);
        assert!(d.iter().all(|d| d.rule == "direct-output"));
        // `print` as a method name is not the macro.
        assert!(run("self.print(); let print = 2;", scope).is_empty());
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src = "use std::collections::HashMap;\n#[cfg(test)]\nmod tests {\n  use std::collections::HashMap;\n  fn f() { x.unwrap(); println!(\"t\"); }\n}\n";
        let scope = FileScope {
            determinism: true,
            observability: true,
            hot_path: true,
            hot_config: false,
            crate_root: false,
        };
        let d = run(src, scope);
        assert_eq!(d.len(), 1, "only the non-test HashMap fires: {d:?}");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn unsafe_attr_check() {
        let root = FileScope {
            crate_root: true,
            ..Default::default()
        };
        assert_eq!(run("pub mod x;", root).len(), 1);
        assert!(run("#![forbid(unsafe_code)]\npub mod x;", root).is_empty());
        assert!(run("//! Doc.\n#![deny(unsafe_code)]\npub mod x;", root).is_empty());
    }
}
