//! `ano-lint`: a zero-dependency static-analysis pass for this workspace.
//!
//! The reproduction's core guarantees — bit-identical traces across
//! processes, a panic-free per-packet data path, all observability routed
//! through `ano-trace`, and a resync state machine that matches its spec —
//! are otherwise enforced only dynamically (golden traces, the scenario
//! matrix, CI's two-process hash check). This crate enforces them
//! *structurally*, at analysis time, before anything runs:
//!
//! * a minimal Rust lexer ([`lexer`]) turns each source file into a token
//!   stream with byte offsets (no `syn`, preserving the hermetic build);
//! * a rule engine ([`rules`], [`engine`]) applies scoped rule families —
//!   determinism, panic-freedom, observability, unsafe-code hygiene;
//! * an item/call-site extractor ([`parser`]) lifts each file to its fns,
//!   call sites, and fact seeds, pruning `#[cfg(test)]` code;
//! * a cross-crate call graph ([`graph`]) links those fns workspace-wide,
//!   with method calls resolved by receiver-name heuristics and everything
//!   unresolvable counted in an explicit bucket;
//! * fixed-point fact propagation ([`facts`]) pushes may-panic,
//!   nondeterminism-taint, and may-allocate facts along the graph and
//!   reports any that reach a `// ano-lint: entry(hot-path)` fn, with the
//!   full call chain (`transitive-panic`, `transitive-nondet`,
//!   `hot-alloc`), plus a dead-export pass and the ranked allocation-site
//!   inventory behind `--alloc-report`;
//! * inline suppressions ([`suppress`]) allow audited exceptions but
//!   *require* a written justification, and error when stale;
//! * a spec-vs-code pass ([`resync`]) extracts the §4.3 resync transition
//!   table from `crates/core/src/rx.rs` and cross-checks it against the
//!   legal-edge set in `crates/scenario/src/invariant.rs`.
//!
//! Run with `cargo run -p ano-lint` (workspace root is inferred); CI runs
//! it as the `static analysis` tier before building anything.

#![forbid(unsafe_code)]

pub mod diag;
pub mod engine;
pub mod facts;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod resync;
pub mod rules;
pub mod suppress;

pub use diag::{Diagnostic, Severity};
pub use engine::{lint_source, lint_workspace, scope_for, GraphStats, Report};
pub use rules::FileScope;
