//! Inline suppressions: `// ano-lint: allow(<rule>): <justification>`.
//!
//! A suppression silences diagnostics of the named rule(s) on its own line
//! or on the next line that holds code. The justification is mandatory —
//! an allow without one is itself an error (`bad-suppression`), as is one
//! naming a rule that does not exist. Suppressions that silence nothing
//! earn a warning so stale ones get cleaned up.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{Lexed, LineIndex};
use crate::rules::RULES;

/// One parsed suppression directive.
#[derive(Clone, Debug)]
pub struct Suppression {
    pub rules: Vec<String>,
    /// Line the comment sits on (1-based).
    pub line: usize,
    /// First code line at or after the comment that it covers.
    pub applies_to: usize,
    pub used: bool,
}

/// Parse result: valid suppressions plus diagnostics for malformed ones.
pub struct Suppressions {
    pub list: Vec<Suppression>,
    pub diags: Vec<Diagnostic>,
}

/// Scans captured comments for `ano-lint:` directives.
pub fn parse(path: &str, lexed: &Lexed, lines: &LineIndex) -> Suppressions {
    let mut out = Suppressions {
        list: Vec::new(),
        diags: Vec::new(),
    };
    for c in &lexed.comments {
        let Some(rest) = c.text.strip_prefix("ano-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let (line, col) = lines.line_col(c.off);
        let bad = |msg: String| Diagnostic {
            rule: "bad-suppression",
            severity: Severity::Error,
            file: path.to_string(),
            line,
            col,
            message: msg,
        };

        let Some(args) = rest.strip_prefix("allow") else {
            out.diags.push(bad(format!(
                "unknown ano-lint directive `{rest}`; expected \
                 `allow(<rule>): <justification>`"
            )));
            continue;
        };
        let args = args.trim_start();
        let Some(close) = args.find(')') else {
            out.diags.push(bad("malformed allow: missing `)`".to_string()));
            continue;
        };
        let inner = args.strip_prefix('(').map(|s| &s[..close - 1]);
        let Some(inner) = inner else {
            out.diags.push(bad("malformed allow: missing `(`".to_string()));
            continue;
        };
        let rules: Vec<String> = inner
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            out.diags.push(bad("allow() names no rule".to_string()));
            continue;
        }
        let mut ok = true;
        for r in &rules {
            if !RULES.contains(&r.as_str()) {
                out.diags.push(bad(format!(
                    "allow({r}) names an unknown rule; known rules: {}",
                    RULES.join(", ")
                )));
                ok = false;
            }
        }
        if !ok {
            continue;
        }
        // The justification follows the closing paren after a colon.
        let tail = args[close + 1..].trim();
        let justification = tail.strip_prefix(':').map(str::trim).unwrap_or("");
        if justification.is_empty() {
            out.diags.push(bad(format!(
                "suppression of `{}` requires a justification: \
                 `// ano-lint: allow({}): <why this is sound>`",
                rules.join(", "),
                rules.join(", ")
            )));
            continue;
        }

        // The suppression covers its own line and the next code line.
        let applies_to = lexed
            .tokens
            .iter()
            .map(|t| lines.line(t.off))
            .find(|&l| l > line)
            .unwrap_or(line);
        out.list.push(Suppression {
            rules,
            line,
            applies_to,
            used: false,
        });
    }
    out
}

/// Filters `diags` through the suppressions, marking the ones used, and
/// appends an unused-suppression warning for each that silenced nothing.
pub fn apply(path: &str, sup: &mut Suppressions, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let mut kept = Vec::new();
    for d in diags {
        let mut suppressed = false;
        for s in &mut sup.list {
            if (d.line == s.line || d.line == s.applies_to)
                && s.rules.iter().any(|r| r == d.rule)
            {
                s.used = true;
                suppressed = true;
            }
        }
        if !suppressed {
            kept.push(d);
        }
    }
    for s in &sup.list {
        if !s.used {
            kept.push(Diagnostic {
                rule: "bad-suppression",
                severity: Severity::Warning,
                file: path.to_string(),
                line: s.line,
                col: 1,
                message: format!(
                    "suppression of `{}` matches no diagnostic; remove it",
                    s.rules.join(", ")
                ),
            });
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::{run_token_rules, test_spans, FileCtx, FileScope};

    fn lint(src: &str) -> Vec<Diagnostic> {
        let lexed = lex(src);
        let lines = LineIndex::new(src);
        let spans = test_spans(&lexed);
        let ctx = FileCtx {
            path: "t.rs",
            lexed: &lexed,
            lines: &lines,
            test_spans: &spans,
        };
        let scope = FileScope {
            determinism: true,
            ..Default::default()
        };
        let diags = run_token_rules(&ctx, scope);
        let mut sup = parse("t.rs", &lexed, &lines);
        let mut out = apply("t.rs", &mut sup, diags);
        out.extend(sup.diags);
        out
    }

    #[test]
    fn justified_suppression_silences_next_line() {
        let src = "// ano-lint: allow(hash-collection): keyed access only, never iterated\nuse std::collections::HashMap;\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn same_line_suppression_works() {
        let src = "use std::collections::HashMap; // ano-lint: allow(hash-collection): keyed only\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn missing_justification_is_an_error() {
        let src = "// ano-lint: allow(hash-collection)\nuse std::collections::HashMap;\n";
        let d = lint(src);
        // The un-silenced finding plus the bad suppression itself.
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|d| d.rule == "bad-suppression"
            && d.severity == Severity::Error
            && d.message.contains("justification")));
        assert!(d.iter().any(|d| d.rule == "hash-collection"));
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let src = "// ano-lint: allow(no-such-rule): because\nlet x = 1;\n";
        let d = lint(src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("unknown rule"));
    }

    #[test]
    fn unused_suppression_warns() {
        let src = "// ano-lint: allow(wall-clock): pretend\nlet x = 1;\n";
        let d = lint(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].severity, Severity::Warning);
        assert!(d[0].message.contains("matches no diagnostic"));
    }

    #[test]
    fn suppression_does_not_leak_past_next_code_line() {
        let src = "// ano-lint: allow(hash-collection): first only\nuse std::collections::HashMap;\nuse std::collections::HashSet;\n";
        let d = lint(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn multi_rule_allow() {
        let src = "// ano-lint: allow(hash-collection, wall-clock): both here\nuse std::collections::HashMap; fn f(t: Instant) {}\n";
        assert!(lint(src).is_empty());
    }
}
