//! Inline suppressions: `// ano-lint: allow(<rule>): <justification>`.
//!
//! A suppression silences diagnostics of the named rule(s) on its own line
//! or on the next line that holds code; `allow-file(<rule>): <why>` covers
//! the whole file (for e.g. the array-index density of crypto kernels).
//! The justification is mandatory — an allow without one is itself an
//! error (`bad-suppression`), as is one naming a rule that does not exist.
//! A suppression that silences nothing is an **error** too: stale allows
//! are latent holes in the policy, not clutter.
//!
//! Two further directives share the `ano-lint:` prefix but are consumed by
//! the parser, not here: `entry(<class>)` marks a call-graph root and
//! `cold(<why>)` marks an audited allocation boundary (see `parser.rs`).

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{Lexed, LineIndex};
use crate::rules::RULES;

/// One parsed suppression directive.
#[derive(Clone, Debug)]
pub struct Suppression {
    pub rules: Vec<String>,
    /// Line the comment sits on (1-based).
    pub line: usize,
    /// First code line at or after the comment that it covers.
    pub applies_to: usize,
    /// True for `allow-file`: covers every line of the file.
    pub file_scope: bool,
    pub used: bool,
}

impl Suppression {
    /// Does this suppression cover rule `rule` at `line`? Does not mark
    /// used — callers decide (a *query* during fact seeding marks used via
    /// [`Suppressions::covers`], the final filter via [`apply`]).
    fn matches(&self, line: usize, rule: &str) -> bool {
        (self.file_scope || line == self.line || line == self.applies_to)
            && self.rules.iter().any(|r| r == rule)
    }
}

/// Parse result: valid suppressions plus diagnostics for malformed ones.
pub struct Suppressions {
    pub list: Vec<Suppression>,
    pub diags: Vec<Diagnostic>,
}

impl Suppressions {
    /// True when some suppression covers any of `rules` at `line`; marks
    /// every matching suppression used. This is how transitive-fact seeds
    /// consult the same audited allows as the syntactic rules.
    pub fn covers(&mut self, line: usize, rules: &[&str]) -> bool {
        let mut hit = false;
        for s in &mut self.list {
            if rules.iter().any(|r| s.matches(line, r)) {
                s.used = true;
                hit = true;
            }
        }
        hit
    }
}

/// Scans captured comments for `ano-lint:` directives.
pub fn parse(path: &str, lexed: &Lexed, lines: &LineIndex) -> Suppressions {
    let mut out = Suppressions {
        list: Vec::new(),
        diags: Vec::new(),
    };
    for c in &lexed.comments {
        let Some(rest) = c.text.strip_prefix("ano-lint:") else {
            continue;
        };
        let rest = rest.trim();
        // `entry(...)` and `cold(...)` are call-graph annotations owned by
        // the parser (which also validates their placement and arguments).
        if rest.starts_with("entry") || rest.starts_with("cold") {
            continue;
        }
        let (line, col) = lines.line_col(c.off);
        let bad = |msg: String| Diagnostic {
            rule: "bad-suppression",
            severity: Severity::Error,
            file: path.to_string(),
            line,
            col,
            message: msg,
            chain: Vec::new(),
        };

        let (args, file_scope) = if let Some(a) = rest.strip_prefix("allow-file") {
            (a, true)
        } else if let Some(a) = rest.strip_prefix("allow") {
            (a, false)
        } else {
            out.diags.push(bad(format!(
                "unknown ano-lint directive `{rest}`; expected \
                 `allow(<rule>): <justification>`, `allow-file(<rule>): <justification>`, \
                 `entry(<class>)`, or `cold(<why>)`"
            )));
            continue;
        };
        let args = args.trim_start();
        let Some(close) = args.find(')') else {
            out.diags.push(bad("malformed allow: missing `)`".to_string()));
            continue;
        };
        let inner = args.strip_prefix('(').map(|s| &s[..close - 1]);
        let Some(inner) = inner else {
            out.diags.push(bad("malformed allow: missing `(`".to_string()));
            continue;
        };
        let rules: Vec<String> = inner
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            out.diags.push(bad("allow() names no rule".to_string()));
            continue;
        }
        let mut ok = true;
        for r in &rules {
            if !RULES.contains(&r.as_str()) {
                out.diags.push(bad(format!(
                    "allow({r}) names an unknown rule; known rules: {}",
                    RULES.join(", ")
                )));
                ok = false;
            }
        }
        if !ok {
            continue;
        }
        // The justification follows the closing paren after a colon.
        let tail = args[close + 1..].trim();
        let justification = tail.strip_prefix(':').map(str::trim).unwrap_or("");
        if justification.is_empty() {
            out.diags.push(bad(format!(
                "suppression of `{}` requires a justification: \
                 `// ano-lint: allow({}): <why this is sound>`",
                rules.join(", "),
                rules.join(", ")
            )));
            continue;
        }

        // The suppression covers its own line and the next code line.
        let applies_to = lexed
            .tokens
            .iter()
            .map(|t| lines.line(t.off))
            .find(|&l| l > line)
            .unwrap_or(line);
        out.list.push(Suppression {
            rules,
            line,
            applies_to,
            file_scope,
            used: false,
        });
    }
    out
}

/// Filters `diags` through the suppressions, marking the ones used.
/// Stale-suppression errors are *not* emitted here — a suppression may
/// still be consumed by a later pass (fact seeding); the engine calls
/// [`stale_diags`] once every pass has run.
pub fn apply(sup: &mut Suppressions, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let mut kept = Vec::new();
    for d in diags {
        let mut suppressed = false;
        for s in &mut sup.list {
            if s.matches(d.line, d.rule) {
                s.used = true;
                suppressed = true;
            }
        }
        if !suppressed {
            kept.push(d);
        }
    }
    kept
}

/// One error per suppression that silenced nothing across *all* passes.
pub fn stale_diags(path: &str, sup: &Suppressions) -> Vec<Diagnostic> {
    sup.list
        .iter()
        .filter(|s| !s.used)
        .map(|s| Diagnostic {
            rule: "bad-suppression",
            severity: Severity::Error,
            file: path.to_string(),
            line: s.line,
            col: 1,
            message: format!(
                "suppression of `{}` matches no diagnostic and silences no \
                 fact seed; remove it",
                s.rules.join(", ")
            ),
            chain: Vec::new(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::{run_token_rules, test_spans, FileCtx, FileScope};

    fn lint(src: &str) -> Vec<Diagnostic> {
        let lexed = lex(src);
        let lines = LineIndex::new(src);
        let spans = test_spans(&lexed);
        let ctx = FileCtx {
            path: "t.rs",
            lexed: &lexed,
            lines: &lines,
            test_spans: &spans,
        };
        let scope = FileScope {
            determinism: true,
            ..Default::default()
        };
        let diags = run_token_rules(&ctx, scope);
        let mut sup = parse("t.rs", &lexed, &lines);
        let mut out = apply(&mut sup, diags);
        out.extend(stale_diags("t.rs", &sup));
        out.extend(sup.diags);
        out
    }

    #[test]
    fn justified_suppression_silences_next_line() {
        let src = "// ano-lint: allow(hash-collection): keyed access only, never iterated\nuse std::collections::HashMap;\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn same_line_suppression_works() {
        let src = "use std::collections::HashMap; // ano-lint: allow(hash-collection): keyed only\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn allow_file_covers_every_line() {
        let src = "// ano-lint: allow-file(hash-collection): lookup tables, never iterated\n\
                   use std::collections::HashMap;\nfn f() {}\nuse std::collections::HashSet;\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn missing_justification_is_an_error() {
        let src = "// ano-lint: allow(hash-collection)\nuse std::collections::HashMap;\n";
        let d = lint(src);
        // The un-silenced finding plus the bad suppression itself.
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|d| d.rule == "bad-suppression"
            && d.severity == Severity::Error
            && d.message.contains("justification")));
        assert!(d.iter().any(|d| d.rule == "hash-collection"));
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let src = "// ano-lint: allow(no-such-rule): because\nlet x = 1;\n";
        let d = lint(src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("unknown rule"));
    }

    #[test]
    fn stale_suppression_is_an_error() {
        let src = "// ano-lint: allow(wall-clock): pretend\nlet x = 1;\n";
        let d = lint(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].severity, Severity::Error);
        assert!(d[0].message.contains("matches no diagnostic"));
    }

    #[test]
    fn entry_and_cold_are_not_suppressions() {
        let src = "// ano-lint: entry(hot-path)\nfn f() {}\n// ano-lint: cold(setup)\nfn g() {}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn covers_marks_used_for_fact_seeds() {
        let src = "// ano-lint: allow(hot-alloc): ring is preallocated, this is the one-time splice\nlet v = grow();\n";
        let lexed = lex(src);
        let lines = LineIndex::new(src);
        let mut sup = parse("t.rs", &lexed, &lines);
        assert!(sup.covers(2, &["hot-alloc", "hot-config-clone"]));
        assert!(!sup.covers(9, &["hot-alloc"]));
        assert!(stale_diags("t.rs", &sup).is_empty());
    }

    #[test]
    fn suppression_does_not_leak_past_next_code_line() {
        let src = "// ano-lint: allow(hash-collection): first only\nuse std::collections::HashMap;\nuse std::collections::HashSet;\n";
        let d = lint(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn multi_rule_allow() {
        let src = "// ano-lint: allow(hash-collection, wall-clock): both here\nuse std::collections::HashMap; fn f(t: Instant) {}\n";
        assert!(lint(src).is_empty());
    }
}
