//! Spec-vs-code consistency: the resync state machine (`rule resync-table`).
//!
//! The paper's §4.3 receive resync machine (searching → tracking →
//! confirmation) lives in two places that must never drift:
//!
//! * **code** — `crates/core/src/rx.rs` declares its complete emitted edge
//!   set in the `legal_transition` match table (and debug-asserts it on
//!   every phase change);
//! * **spec** — `crates/scenario/src/invariant.rs` hard-codes the legal
//!   edge set (`LEGAL_EDGES`) that scenario runs validate traces against.
//!
//! This pass extracts both tables from the token streams and fails the
//! lint if they differ in either direction: an edge the engine can emit
//! but the invariant would reject means every scenario using it fails at
//! runtime; an edge the invariant allows but the engine never emits means
//! the dynamic checker is weaker than it claims.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{lex, Token};

/// The four resync phases (ano-trace's `ResyncPhase` names).
pub const PHASES: &[&str] = &["Offloading", "Searching", "Tracking", "Confirmed"];

/// An extracted `(from, to)` edge.
pub type Edge = (String, String);

/// Extracts the edge table from `rx.rs`: the body of the `matches!` macro
/// inside `fn legal_transition`.
pub fn extract_rx_table(src: &str) -> Result<Vec<Edge>, String> {
    let toks = lex(src).tokens;
    let fn_idx = find_fn(&toks, "legal_transition")
        .ok_or("crates/core/src/rx.rs: `fn legal_transition` not found")?;
    // Locate `matches` `!` `(` after the fn, then pair phase idents inside.
    let mut i = fn_idx;
    while i < toks.len() {
        if toks[i].ident() == Some("matches")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            let end = match_paren(&toks, i + 2);
            return pair_phases(&toks[i + 3..end], "rx.rs legal_transition");
        }
        i += 1;
    }
    Err("crates/core/src/rx.rs: legal_transition holds no matches!(…) table".to_string())
}

/// Extracts the edge table from `invariant.rs`: the `LEGAL_EDGES` array.
pub fn extract_invariant_table(src: &str) -> Result<Vec<Edge>, String> {
    let toks = lex(src).tokens;
    let mut i = 0;
    while i < toks.len() {
        if toks[i].ident() == Some("LEGAL_EDGES") {
            // Skip past the type annotation to the `=`, then to the `[`
            // opening the array literal (the type itself contains a `[`).
            let mut j = i + 1;
            while j < toks.len() && !toks[j].is_punct('=') {
                j += 1;
            }
            while j < toks.len() && !toks[j].is_punct('[') {
                j += 1;
            }
            if j == toks.len() {
                return Err(
                    "crates/scenario/src/invariant.rs: LEGAL_EDGES has no array body".to_string()
                );
            }
            let end = match_bracket(&toks, j);
            return pair_phases(&toks[j + 1..end], "invariant.rs LEGAL_EDGES");
        }
        i += 1;
    }
    Err("crates/scenario/src/invariant.rs: `LEGAL_EDGES` not found".to_string())
}

/// Cross-checks the two tables; returns one diagnostic per drift.
pub fn cross_check(rx_src: &str, inv_src: &str) -> Vec<Diagnostic> {
    let fail = |msg: String| Diagnostic {
        rule: "resync-table",
        severity: Severity::Error,
        file: "crates/core/src/rx.rs".to_string(),
        line: 1,
        col: 1,
        message: msg,
        chain: Vec::new(),
    };
    let rx = match extract_rx_table(rx_src) {
        Ok(t) => t,
        Err(e) => return vec![fail(e)],
    };
    let inv = match extract_invariant_table(inv_src) {
        Ok(t) => t,
        Err(e) => return vec![fail(e)],
    };
    let mut out = Vec::new();
    for e in &rx {
        if !inv.contains(e) {
            out.push(fail(format!(
                "resync drift: rx engine can emit {}->{} but invariant.rs LEGAL_EDGES \
                 rejects it — every scenario taking this edge fails at runtime",
                e.0, e.1
            )));
        }
    }
    for e in &inv {
        if !rx.contains(e) {
            out.push(fail(format!(
                "resync drift: invariant.rs LEGAL_EDGES allows {}->{} but the rx engine \
                 never emits it — the dynamic checker is weaker than the code",
                e.0, e.1
            )));
        }
    }
    out
}

/// Finds the token index of `fn <name>`.
fn find_fn(toks: &[Token], name: &str) -> Option<usize> {
    toks.windows(2)
        .position(|w| w[0].ident() == Some("fn") && w[1].ident() == Some(name))
}

/// Collects phase identifiers in a token slice and pairs them up in order:
/// `(A, B) | (C, D)` and `(Phase::A, Phase::B), (Phase::C, Phase::D)` both
/// yield `[(A,B), (C,D)]`. Path qualifiers (`ResyncPhase`) are filtered by
/// the phase-name whitelist.
fn pair_phases(toks: &[Token], what: &str) -> Result<Vec<Edge>, String> {
    let names: Vec<String> = toks
        .iter()
        .filter_map(|t| t.ident())
        .filter(|s| PHASES.contains(s))
        .map(str::to_string)
        .collect();
    if names.is_empty() {
        return Err(format!("{what}: no resync phase names found in table"));
    }
    if names.len() % 2 != 0 {
        return Err(format!(
            "{what}: odd number of phase names ({}) — table is not a list of (from, to) pairs",
            names.len()
        ));
    }
    let mut edges: Vec<Edge> = names
        .chunks(2)
        .map(|c| (c[0].clone(), c[1].clone()))
        .collect();
    edges.sort();
    edges.dedup();
    Ok(edges)
}

/// Returns the index of the `)` matching the `(` at `idx`.
fn match_paren(toks: &[Token], idx: usize) -> usize {
    match_delim(toks, idx, '(', ')')
}

/// Returns the index of the `]` matching the `[` at `idx`.
fn match_bracket(toks: &[Token], idx: usize) -> usize {
    match_delim(toks, idx, '[', ']')
}

fn match_delim(toks: &[Token], idx: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    const RX_OK: &str = r"
        pub fn legal_transition(from: ResyncPhase, to: ResyncPhase) -> bool {
            matches!(
                (from, to),
                (ResyncPhase::Offloading, ResyncPhase::Searching)
                    | (ResyncPhase::Searching, ResyncPhase::Tracking)
                    | (ResyncPhase::Tracking, ResyncPhase::Confirmed)
                    | (ResyncPhase::Confirmed, ResyncPhase::Offloading)
            )
        }
    ";

    const INV_OK: &str = r"
        pub const LEGAL_EDGES: &[(ResyncPhase, ResyncPhase)] = &[
            (ResyncPhase::Offloading, ResyncPhase::Searching),
            (ResyncPhase::Searching, ResyncPhase::Tracking),
            (ResyncPhase::Tracking, ResyncPhase::Confirmed),
            (ResyncPhase::Confirmed, ResyncPhase::Offloading),
        ];
    ";

    #[test]
    fn matching_tables_pass() {
        assert!(cross_check(RX_OK, INV_OK).is_empty());
    }

    #[test]
    fn extraction_is_order_insensitive() {
        let rx = extract_rx_table(RX_OK).unwrap();
        let inv = extract_invariant_table(INV_OK).unwrap();
        assert_eq!(rx, inv);
        assert_eq!(rx.len(), 4);
        assert!(rx.contains(&("Tracking".into(), "Confirmed".into())));
    }

    #[test]
    fn drift_in_code_is_reported() {
        let rx_extra = RX_OK.replace(
            "(ResyncPhase::Confirmed, ResyncPhase::Offloading)",
            "(ResyncPhase::Confirmed, ResyncPhase::Offloading)\n | (ResyncPhase::Tracking, ResyncPhase::Offloading)",
        );
        let d = cross_check(&rx_extra, INV_OK);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("Tracking->Offloading"));
        assert!(d[0].message.contains("rejects it"));
    }

    #[test]
    fn drift_in_spec_is_reported() {
        let inv_missing = INV_OK.replace("(ResyncPhase::Searching, ResyncPhase::Tracking),", "");
        let d = cross_check(RX_OK, &inv_missing);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("Searching->Tracking"));
    }

    #[test]
    fn missing_table_is_an_error() {
        let d = cross_check("fn other() {}", INV_OK);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("legal_transition"));
    }
}
