//! A minimal Rust lexer: source text → token stream with byte offsets.
//!
//! Deliberately *not* a parser. The rules in this workspace key off
//! identifiers, macro names, literals, and brace structure, so a faithful
//! token stream is enough — and keeping the lexer ~300 lines preserves the
//! hermetic-build guarantee (no `syn`, no registry dependencies at all).
//!
//! What it gets right, because the rules depend on it:
//!
//! * comments (line, nested block) are skipped but *captured*, so the
//!   suppression scanner can read `// ano-lint:` directives;
//! * string/char literals are opaque single tokens (a `HashMap` inside a
//!   string must not fire the determinism rule) — including raw strings
//!   `r#"…"#`, byte strings, and byte/char escapes;
//! * lifetimes (`'a`) are distinguished from char literals (`'a'`);
//! * numbers never swallow `..` (so `0..n` lexes as three tokens).

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the token's first character in the source.
    pub off: usize,
}

/// Token classes, carrying text only where rules need it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `fn`, `r#match` → `match`).
    Ident(String),
    /// Lifetime such as `'a` (text without the quote).
    Lifetime(String),
    /// String literal, verbatim including quotes/prefix (`"x"`, `br#"y"#`).
    Str(String),
    /// Char or byte literal (`'a'`, `b'\n'`), verbatim.
    Char(String),
    /// Numeric literal, verbatim.
    Num(String),
    /// Any other single punctuation character.
    Punct(char),
}

/// A captured comment (the token stream itself skips them).
#[derive(Clone, Debug)]
pub struct Comment {
    /// Text without the `//` / `/*` markers, trimmed.
    pub text: String,
    pub off: usize,
}

/// Lex output: tokens plus captured comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl Token {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True for punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// Maps byte offsets to 1-based `(line, col)` pairs.
pub struct LineIndex {
    /// Byte offset at which each line starts.
    starts: Vec<usize>,
}

impl LineIndex {
    pub fn new(src: &str) -> LineIndex {
        let mut starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineIndex { starts }
    }

    /// 1-based line and column for a byte offset.
    pub fn line_col(&self, off: usize) -> (usize, usize) {
        let line = self.starts.partition_point(|&s| s <= off);
        let col = off - self.starts[line - 1] + 1;
        (line, col)
    }

    /// 1-based line number only.
    pub fn line(&self, off: usize) -> usize {
        self.line_col(off).0
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Unterminated literals or comments
/// do not panic: the remainder of the file becomes one opaque token.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    // Byte offset of each char (source positions must be byte-accurate for
    // line/col reporting even with multi-byte characters in comments).
    let mut offs = Vec::with_capacity(b.len() + 1);
    let mut acc = 0;
    for &c in &b {
        offs.push(acc);
        acc += c.len_utf8();
    }
    offs.push(acc);

    let mut out = Lexed::default();
    let mut i = 0usize;
    let n = b.len();

    while i < n {
        let c = b[i];
        let off = offs[i];

        // Whitespace.
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && b[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                text: b[start..j].iter().collect::<String>().trim().to_string(),
                off,
            });
            i = j;
            continue;
        }

        // Block comment (nested).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start = i + 2;
            let mut depth = 1;
            let mut j = start;
            while j < n && depth > 0 {
                if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            let end = j.saturating_sub(2).max(start);
            out.comments.push(Comment {
                text: b[start..end].iter().collect::<String>().trim().to_string(),
                off,
            });
            i = j;
            continue;
        }

        // Raw / byte string prefixes: r", r#", br", b", rb is not Rust.
        if (c == 'r' || c == 'b') && i + 1 < n {
            let (plen, raw) = match (c, b[i + 1], b.get(i + 2)) {
                ('r', '"', _) | ('r', '#', _) => (1, true),
                ('b', 'r', Some('"')) | ('b', 'r', Some('#')) => (2, true),
                ('b', '"', _) => (1, false),
                ('b', '\'', _) => {
                    // Byte char literal b'x'.
                    let (tok, j) = lex_char(&b, i + 1, i);
                    out.tokens.push(Token { kind: tok, off });
                    i = j;
                    continue;
                }
                _ => (0, false),
            };
            if plen > 0 {
                let (tok, j) = if raw {
                    lex_raw_string(&b, i + plen, i)
                } else {
                    lex_string(&b, i + plen, i)
                };
                out.tokens.push(Token { kind: tok, off });
                i = j;
                continue;
            }
            // Fall through to identifier below.
        }

        // Raw identifier r#ident (raw strings handled above).
        if c == 'r' && i + 2 < n && b[i + 1] == '#' && is_ident_start(b[i + 2]) {
            let mut j = i + 2;
            while j < n && is_ident_continue(b[j]) {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident(b[i + 2..j].iter().collect()),
                off,
            });
            i = j;
            continue;
        }

        // Identifier / keyword.
        if is_ident_start(c) {
            let mut j = i;
            while j < n && is_ident_continue(b[j]) {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident(b[i..j].iter().collect()),
                off,
            });
            i = j;
            continue;
        }

        // Number (decimal, hex/octal/binary, float; never swallows `..`).
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < n {
                let d = b[j];
                if is_ident_continue(d) {
                    j += 1;
                } else if d == '.'
                    && j + 1 < n
                    && b[j + 1].is_ascii_digit()
                    && !b[i..j].contains(&'.')
                {
                    j += 1;
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Num(b[i..j].iter().collect()),
                off,
            });
            i = j;
            continue;
        }

        // String literal.
        if c == '"' {
            let (tok, j) = lex_string(&b, i, i);
            out.tokens.push(Token { kind: tok, off });
            i = j;
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            if i + 1 < n && is_ident_start(b[i + 1]) {
                // Find the end of the would-be identifier.
                let mut j = i + 1;
                while j < n && is_ident_continue(b[j]) {
                    j += 1;
                }
                if j < n && b[j] == '\'' && j == i + 2 {
                    // 'x' — a one-char literal.
                    let (tok, j2) = lex_char(&b, i, i);
                    out.tokens.push(Token { kind: tok, off });
                    i = j2;
                } else {
                    // 'abc — a lifetime (or 'static etc.).
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime(b[i + 1..j].iter().collect()),
                        off,
                    });
                    i = j;
                }
                continue;
            }
            let (tok, j) = lex_char(&b, i, i);
            out.tokens.push(Token { kind: tok, off });
            i = j;
            continue;
        }

        out.tokens.push(Token {
            kind: TokenKind::Punct(c),
            off,
        });
        i += 1;
    }

    out
}

/// Lexes a `"…"` string starting at the quote (`at`); `from` is the token
/// start (prefix included). Returns the token and the index past the close.
fn lex_string(b: &[char], at: usize, from: usize) -> (TokenKind, usize) {
    let n = b.len();
    let mut j = at + 1;
    while j < n {
        match b[j] {
            '\\' => j += 2,
            '"' => {
                j += 1;
                return (TokenKind::Str(b[from..j].iter().collect()), j);
            }
            _ => j += 1,
        }
    }
    (TokenKind::Str(b[from..].iter().collect()), n)
}

/// Lexes a raw string starting at `at` (pointing at `"` or the first `#`).
fn lex_raw_string(b: &[char], at: usize, from: usize) -> (TokenKind, usize) {
    let n = b.len();
    let mut hashes = 0;
    let mut j = at;
    while j < n && b[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j >= n || b[j] != '"' {
        // Not actually a raw string (e.g. `r#ident` slipped through);
        // treat the single char as punctuation to make progress.
        return (TokenKind::Punct(b[from]), from + 1);
    }
    j += 1;
    while j < n {
        if b[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0;
            while k < n && b[k] == '#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return (TokenKind::Str(b[from..k].iter().collect()), k);
            }
        }
        j += 1;
    }
    (TokenKind::Str(b[from..].iter().collect()), n)
}

/// Lexes a `'…'` char/byte literal starting at the quote.
fn lex_char(b: &[char], at: usize, from: usize) -> (TokenKind, usize) {
    let n = b.len();
    let mut j = at + 1;
    while j < n {
        match b[j] {
            '\\' => j += 2,
            '\'' => {
                j += 1;
                return (TokenKind::Char(b[from..j].iter().collect()), j);
            }
            _ => j += 1,
        }
    }
    (TokenKind::Char(b[from..].iter().collect()), n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn basic_idents_and_puncts() {
        let l = lex("fn main() { let x = y; }");
        assert_eq!(idents("fn main() { let x = y; }"), ["fn", "main", "let", "x", "y"]);
        assert!(l.tokens.iter().any(|t| t.is_punct('{')));
    }

    #[test]
    fn strings_are_opaque() {
        assert_eq!(idents(r#"let s = "HashMap::new()";"#), ["let", "s"]);
        assert_eq!(idents(r##"let s = r#"Instant"#;"##), ["let", "s"]);
        assert_eq!(idents(r#"let s = b"SystemTime";"#), ["let", "s"]);
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let l = lex("// ano-lint: allow(x): y\nlet a = 1; /* HashMap */");
        assert_eq!(idents("// HashMap\nlet a = 1;"), ["let", "a"]);
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].text, "ano-lint: allow(x): y");
        assert_eq!(l.comments[1].text, "HashMap");
    }

    #[test]
    fn nested_block_comment() {
        let l = lex("/* a /* b */ c */ let x = 1;");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(idents("/* a /* b */ c */ let x = 1;"), ["let", "x"]);
    }

    #[test]
    fn lifetime_vs_char() {
        let l = lex("fn f<'a>(x: &'a u8) { let c = 'a'; let d = '\\n'; }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Lifetime(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(lifetimes, ["a", "a"]);
        let chars: Vec<_> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Char(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(chars, ["'a'", "'\\n'"]);
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let l = lex("for i in 0..10 {}");
        let nums: Vec<_> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Num(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, ["0", "10"]);
        assert_eq!(lex("1.5e3 0xFF 1_000").tokens.len(), 3);
    }

    #[test]
    fn raw_identifier() {
        assert_eq!(idents("let r#match = 1;"), ["let", "match"]);
    }

    #[test]
    fn line_index_maps_offsets() {
        let src = "ab\ncde\nf";
        let ix = LineIndex::new(src);
        assert_eq!(ix.line_col(0), (1, 1));
        assert_eq!(ix.line_col(3), (2, 1));
        assert_eq!(ix.line_col(5), (2, 3));
        assert_eq!(ix.line_col(7), (3, 1));
    }

    #[test]
    fn byte_char_literal() {
        let l = lex("let x = b'a'; let y = b\"bytes\";");
        assert!(l.tokens.iter().any(|t| matches!(&t.kind, TokenKind::Char(s) if s == "b'a'")));
        assert!(l.tokens.iter().any(|t| matches!(&t.kind, TokenKind::Str(s) if s == "b\"bytes\"")));
    }
}
