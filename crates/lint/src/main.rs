//! CLI for `ano-lint`.
//!
//! ```text
//! cargo run -p ano-lint [--root <dir>] [--format text|json] [--json]
//!                       [--alloc-report] [--timing]
//! ```
//!
//! Exits non-zero iff any error-severity diagnostic survives suppression.
//! `--json` (alias for `--format json`) emits one JSON object per line in
//! stable field order (rule, severity, file, line, col, message, chain)
//! for machine consumption. `--alloc-report` prints the ranked inventory
//! of allocation sites reachable from the hot-path entries instead of
//! diagnostics (and exits zero — it is a measurement, not a gate).
//! `--timing` appends per-pass wall-clock milliseconds to stderr.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use ano_lint::lint_workspace;

const USAGE: &str =
    "usage: ano-lint [--root <dir>] [--format text|json] [--json] [--alloc-report] [--timing]";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut alloc_report = false;
    let mut timing = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                _ => return usage("--format must be text or json"),
            },
            "--json" => format = Format::Json,
            "--alloc-report" => alloc_report = true,
            "--timing" => timing = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    // Default root: this crate lives at <root>/crates/lint, so the build-time
    // manifest dir puts the workspace two levels up, wherever the binary is
    // invoked from.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
    });

    let report = lint_workspace(&root);
    if timing {
        for (pass, millis) in &report.timings {
            eprintln!("ano-lint: timing {pass} {millis:.1}ms");
        }
    }

    if alloc_report {
        // The inventory is the deliverable: every allocation site reachable
        // from an `entry(hot-path)` fn, hottest first. Suppressed sites are
        // listed too — an audited allow silences the error, not the
        // measurement (this list feeds the arena/slab work).
        println!(
            "# allocation sites reachable from {} hot-path entr{} \
             ({} fns, {} edges, {} unresolved calls)",
            report.graph.entries,
            if report.graph.entries == 1 { "y" } else { "ies" },
            report.graph.fns,
            report.graph.edges,
            report.graph.unresolved,
        );
        for (i, e) in report.alloc_report.iter().enumerate() {
            println!("{}", e.render(i + 1));
        }
        return ExitCode::SUCCESS;
    }

    for d in &report.diags {
        match format {
            Format::Text => println!("{}", d.render_text()),
            Format::Json => println!("{}", d.render_json()),
        }
    }
    let (errors, warnings) = (report.errors(), report.warnings());
    if format == Format::Text {
        println!(
            "ano-lint: {} file(s) checked, {} fn(s), {} call edge(s) \
             ({} unresolved), {} hot-path entr{}; {errors} error(s), {warnings} warning(s)",
            report.files,
            report.graph.fns,
            report.graph.edges,
            report.graph.unresolved,
            report.graph.entries,
            if report.graph.entries == 1 { "y" } else { "ies" },
        );
    }
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn usage(err: &str) -> ExitCode {
    eprintln!("ano-lint: {err}\n{USAGE}");
    ExitCode::FAILURE
}
