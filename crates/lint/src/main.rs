//! CLI for `ano-lint`.
//!
//! ```text
//! cargo run -p ano-lint [--root <dir>] [--format text|json]
//! ```
//!
//! Exits non-zero iff any error-severity diagnostic survives suppression.
//! In `json` mode every diagnostic is one JSON object per line (stable
//! field order), for machine consumption.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use ano_lint::lint_workspace;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                _ => return usage("--format must be text or json"),
            },
            "--help" | "-h" => {
                println!("usage: ano-lint [--root <dir>] [--format text|json]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    // Default root: this crate lives at <root>/crates/lint, so the build-time
    // manifest dir puts the workspace two levels up, wherever the binary is
    // invoked from.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
    });

    let report = lint_workspace(&root);
    for d in &report.diags {
        match format {
            Format::Text => println!("{}", d.render_text()),
            Format::Json => println!("{}", d.render_json()),
        }
    }
    let (errors, warnings) = (report.errors(), report.warnings());
    if format == Format::Text {
        println!(
            "ano-lint: {} file(s) checked, {errors} error(s), {warnings} warning(s)",
            report.files
        );
    }
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn usage(err: &str) -> ExitCode {
    eprintln!("ano-lint: {err}\nusage: ano-lint [--root <dir>] [--format text|json]");
    ExitCode::FAILURE
}
