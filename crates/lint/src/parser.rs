//! A lightweight item extractor over the lexer: turns one file's token
//! stream into `fn` items with their call sites and fact seeds.
//!
//! Deliberately *not* a full parser — the call-graph pass needs exactly
//! four things from each file, and a brace-matching walk over the token
//! stream delivers all of them without `syn`:
//!
//! * **items**: `fn` definitions with their enclosing `mod` path and
//!   `impl`/`trait` context (so each gets a stable workspace-unique id of
//!   the form `crate::module::Type::fn`);
//! * **call sites**: qualified calls (`a::b::f(…)`, `Self::f(…)`),
//!   bare calls (`f(…)`), and method calls (`recv.m(…)`) with the
//!   receiver identifier kept as a resolution hint;
//! * **fact seeds**: the token patterns that *introduce* a panic
//!   (`unwrap`/`expect`/`panic!`/`assert!`/slice-index/integer-div),
//!   nondeterminism (wall clock, OS threads, hash-ordered collections),
//!   or an allocation (`Vec::new`/`Box::new`/`format!`/`clone`/`to_vec`/…);
//! * **annotations**: `// ano-lint: entry(hot-path)` marks the fn that
//!   follows as a hot-path root the fact pass must prove clean, and
//!   `// ano-lint: cold(<why>)` marks a fn as an audited allocation
//!   boundary (see `facts` — panics and taint still propagate through).
//!
//! `#[cfg(test)]` modules and items are pruned entirely: a test twin of a
//! hot-path helper must never contribute edges or seeds.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{lex, LineIndex, Token, TokenKind};
use crate::rules;

/// Which fact lattice a seed feeds (see `facts`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Fact {
    /// The site can panic and unwind the whole schedule.
    Panic,
    /// The site reads process-varying state (clock, OS scheduler, hash
    /// ordering) that would leak into traces.
    Nondet,
    /// The site can touch the heap.
    Alloc,
}

impl Fact {
    /// The transitive rule id findings of this fact report under.
    pub fn rule(self) -> &'static str {
        match self {
            Fact::Panic => "transitive-panic",
            Fact::Nondet => "transitive-nondet",
            Fact::Alloc => "hot-alloc",
        }
    }

    /// The per-file syntactic rule whose suppression also kills seeds of
    /// this fact (so one audited `allow` covers both views of a site).
    pub fn syntactic_rule(self) -> &'static [&'static str] {
        match self {
            Fact::Panic => &["hot-path-panic", "hot-path-index"],
            Fact::Nondet => &["hash-collection", "wall-clock", "thread"],
            Fact::Alloc => &["hot-config-clone"],
        }
    }
}

/// One fact-introducing site inside a fn body.
#[derive(Clone, Debug)]
pub struct Seed {
    pub fact: Fact,
    /// 1-based source line of the site.
    pub line: usize,
    /// Human-readable site description (`.unwrap()`, `slice-index`, …).
    pub what: String,
}

/// One call site inside a fn body.
#[derive(Clone, Debug)]
pub enum CallSite {
    /// `f(…)`, `a::b::f(…)`, `Self::f(…)`, `Type::f(…)`. The path keeps
    /// every segment the source spelled.
    Direct { path: Vec<String>, line: usize },
    /// `recv.m(…)` — `receiver` is the identifier immediately left of the
    /// dot when there is one (`self`, `nic`, `tcp`, …), the resolution
    /// hint `graph` keys its heuristics on.
    Method {
        name: String,
        receiver: Option<String>,
        line: usize,
    },
}

impl CallSite {
    pub fn line(&self) -> usize {
        match self {
            CallSite::Direct { line, .. } | CallSite::Method { line, .. } => *line,
        }
    }
}

/// One extracted `fn` item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Workspace-unique id: `crate::module::fn` or `crate::module::Type::fn`.
    pub id: String,
    /// Bare fn name.
    pub name: String,
    /// Module path inside the crate (file modules + inline `mod`s).
    pub module: Vec<String>,
    /// Inherent/trait-impl type or trait name, if inside an `impl`/`trait`.
    pub impl_type: Option<String>,
    /// True when the fn lives in an `impl Trait for Type` block (its name
    /// is dictated by the trait, so it is never a "dead export").
    pub trait_impl: bool,
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    pub calls: Vec<CallSite>,
    pub seeds: Vec<Seed>,
    /// `entry(<class>)` annotation, e.g. `hot-path`.
    pub entry: Option<String>,
    /// `cold(<why>)` annotation: audited allocation boundary.
    pub cold: Option<String>,
}

/// A `pub` item other than `fn` (struct/enum/trait/const/static/type),
/// tracked for the dead-export pass.
#[derive(Clone, Debug)]
pub struct PubItem {
    pub name: String,
    pub kind: &'static str,
    pub line: usize,
}

/// Everything the workspace passes need from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub path: String,
    pub crate_name: String,
    pub fns: Vec<FnItem>,
    pub pub_items: Vec<PubItem>,
    /// Every identifier token in the file (test modules included) with a
    /// count — the dead-export pass marks a name "used" when it occurs
    /// anywhere beyond its own definitions.
    pub ident_counts: std::collections::BTreeMap<String, usize>,
    /// Malformed `entry`/`cold` annotations.
    pub diags: Vec<Diagnostic>,
}

/// Entry classes `entry(<class>)` may name.
pub const ENTRY_CLASSES: &[&str] = &["hot-path"];

const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut",
    "pub", "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use",
    "where", "while", "yield",
];

const PANIC_MACROS: &[&str] = &[
    "panic", "assert", "assert_eq", "assert_ne", "todo", "unimplemented", "unreachable",
];

/// Macros whose expansion allocates.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// `.m(…)` method names whose callee allocates (on owned/heap types; a
/// false hit on a `Copy` clone is suppressible at the site).
const ALLOC_METHODS: &[&str] = &[
    "clone", "collect", "to_owned", "to_string", "to_vec", "boxed",
];

/// `Type::assoc(…)` pairs whose callee allocates or creates a growable
/// container (`Vec::new` is heap-free until first push, but it *is* the
/// allocation site the arena work needs in the inventory).
const ALLOC_ASSOC: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("VecDeque", "new"),
    ("VecDeque", "with_capacity"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
    ("Rc", "new"),
    ("Arc", "new"),
    ("BTreeMap", "new"),
    ("BTreeSet", "new"),
];

/// Parses one file into items, call sites, seeds, and annotations.
///
/// `file_mod` is the module path the file's location implies
/// (`crates/core/src/rx.rs` → `["rx"]`, `src/lib.rs` → `[]`).
pub fn parse_file(path: &str, crate_name: &str, file_mod: &[String], src: &str) -> ParsedFile {
    let lexed = lex(src);
    let lines = LineIndex::new(src);
    let test_spans = rules::test_spans(&lexed);

    let mut out = ParsedFile {
        path: path.to_string(),
        crate_name: crate_name.to_string(),
        ..Default::default()
    };

    for t in &lexed.tokens {
        if let TokenKind::Ident(s) = &t.kind {
            *out.ident_counts.entry(s.clone()).or_insert(0) += 1;
        }
    }

    // `entry`/`cold` annotations, in offset order; each binds to the next
    // extracted fn.
    let mut anns: Vec<Ann> = Vec::new();
    for c in &lexed.comments {
        let Some(rest) = c.text.strip_prefix("ano-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let (kind, is_entry) = if rest.starts_with("entry") {
            (&rest[5..], true)
        } else if rest.starts_with("cold") {
            (&rest[4..], false)
        } else {
            continue; // allow/allow-file directives belong to `suppress`
        };
        let (line, col) = lines.line_col(c.off);
        let arg = kind
            .trim_start()
            .strip_prefix('(')
            .and_then(|s| s.rfind(')').map(|i| s[..i].trim().to_string()));
        let bad = |msg: String| Diagnostic {
            rule: "bad-entry",
            severity: Severity::Error,
            file: path.to_string(),
            line,
            col,
            message: msg,
            chain: Vec::new(),
        };
        match arg {
            None => out.diags.push(bad(format!(
                "malformed annotation `{rest}`; expected `entry(<class>)` or `cold(<why>)`"
            ))),
            Some(a) if is_entry && !ENTRY_CLASSES.contains(&a.as_str()) => {
                out.diags.push(bad(format!(
                    "entry({a}) names an unknown entry class; known classes: {}",
                    ENTRY_CLASSES.join(", ")
                )))
            }
            Some(a) if !is_entry && a.is_empty() => out.diags.push(bad(
                "cold() requires a justification: `// ano-lint: cold(<why this path is \
                 not per-packet>)`"
                    .to_string(),
            )),
            Some(a) => anns.push(Ann {
                off: c.off,
                line,
                arg: a,
                is_entry,
                used: false,
            }),
        }
    }

    let mut w = Walker {
        toks: &lexed.tokens,
        lines: &lines,
        test_spans: &test_spans,
        crate_name,
        anns: &mut anns,
        out_fns: Vec::new(),
        out_pub: Vec::new(),
        id_seen: std::collections::BTreeMap::new(),
    };
    let n = w.toks.len();
    let mut mods: Vec<String> = file_mod.to_vec();
    w.walk_items(0, n, &mut mods, None);
    out.fns = std::mem::take(&mut w.out_fns);
    out.pub_items = std::mem::take(&mut w.out_pub);

    for a in anns.iter().filter(|a| !a.used) {
        out.diags.push(Diagnostic {
            rule: "bad-entry",
            severity: Severity::Error,
            file: path.to_string(),
            line: a.line,
            col: 1,
            message: format!(
                "`{}({})` annotation does not precede a fn item",
                if a.is_entry { "entry" } else { "cold" },
                a.arg
            ),
            chain: Vec::new(),
        });
    }

    out
}

struct Ann {
    off: usize,
    line: usize,
    arg: String,
    is_entry: bool,
    used: bool,
}

/// Impl/trait context a fn is extracted under.
#[derive(Clone)]
struct ImplCtx {
    ty: String,
    trait_impl: bool,
}

struct Walker<'a> {
    toks: &'a [Token],
    lines: &'a LineIndex,
    test_spans: &'a [(usize, usize)],
    crate_name: &'a str,
    anns: &'a mut Vec<Ann>,
    out_fns: Vec<FnItem>,
    out_pub: Vec<PubItem>,
    /// Id → times seen, to keep ids unique (`X::fmt` from two trait impls).
    id_seen: std::collections::BTreeMap<String, usize>,
}

impl Walker<'_> {
    fn in_test(&self, off: usize) -> bool {
        self.test_spans.iter().any(|&(a, b)| off >= a && off < b)
    }

    fn ident_at(&self, i: usize) -> Option<&str> {
        self.toks.get(i).and_then(Token::ident)
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        self.toks.get(i).is_some_and(|t| t.is_punct(c))
    }

    /// Index one past the `]` matching the `[` that follows a `#`/`#!` at
    /// `i` (which points at `#`).
    fn skip_attr(&self, i: usize) -> (usize, bool) {
        let mut j = i + 1;
        if self.is_punct(j, '!') {
            j += 1;
        }
        if !self.is_punct(j, '[') {
            return (i + 1, false);
        }
        // Detect `cfg(test)` / `cfg(any(test, …))` inside the attribute.
        let end = self.match_delim(j, '[', ']');
        let mut cfg_test = false;
        let mut k = j;
        while k + 3 < end {
            if self.ident_at(k) == Some("cfg")
                && self.is_punct(k + 1, '(')
                && self.toks[k + 2..end].iter().any(|t| t.ident() == Some("test"))
            {
                cfg_test = true;
                break;
            }
            k += 1;
        }
        (end, cfg_test)
    }

    /// Index one past the delimiter matching `open` at index `i`.
    fn match_delim(&self, i: usize, open: char, close: char) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while j < self.toks.len() {
            if self.toks[j].is_punct(open) {
                depth += 1;
            } else if self.toks[j].is_punct(close) {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        self.toks.len()
    }

    /// Skips a balanced `<…>` generic group starting at `i` (pointing at
    /// `<`). Counts angles naively — enough for item signatures, where
    /// comparison operators cannot appear.
    fn skip_angles(&self, i: usize) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while j < self.toks.len() {
            if self.toks[j].is_punct('<') {
                depth += 1;
            } else if self.toks[j].is_punct('>') {
                depth -= 1;
                if depth <= 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        self.toks.len()
    }

    /// Walks item positions in `[i, end)`; `mods` is the module path,
    /// `ictx` the enclosing impl/trait.
    fn walk_items(&mut self, mut i: usize, end: usize, mods: &mut Vec<String>, ictx: Option<&ImplCtx>) {
        let mut pending_pub = false;
        let mut pending_cfg_test = false;
        while i < end {
            // Prune #[cfg(test)] mod bodies wholesale.
            if self.in_test(self.toks[i].off) {
                i += 1;
                continue;
            }
            if self.is_punct(i, '#') {
                let (j, cfg_test) = self.skip_attr(i);
                pending_cfg_test |= cfg_test;
                i = j;
                continue;
            }
            let kw: Option<String> = self.ident_at(i).map(str::to_string);
            match kw.as_deref() {
                Some("pub") => {
                    pending_pub = true;
                    i += 1;
                    // Skip `(crate)` / `(super)` / `(in …)` restrictions —
                    // those are not exports.
                    if self.is_punct(i, '(') {
                        pending_pub = false;
                        i = self.match_delim(i, '(', ')');
                    }
                }
                Some("mod") => {
                    let name = self.ident_at(i + 1).unwrap_or("").to_string();
                    if self.is_punct(i + 2, '{') {
                        let body_end = self.match_delim(i + 2, '{', '}');
                        if !pending_cfg_test {
                            mods.push(name);
                            self.walk_items(i + 3, body_end - 1, mods, None);
                            mods.pop();
                        }
                        i = body_end;
                    } else {
                        i += 2; // `mod name;` — file module, walked separately
                    }
                    pending_pub = false;
                    pending_cfg_test = false;
                }
                Some("impl") => {
                    // `impl<G> Type { … }` / `impl Trait for Type { … }`.
                    let mut j = i + 1;
                    if self.is_punct(j, '<') {
                        j = self.skip_angles(j);
                    }
                    let mut last_ident: Option<String> = None;
                    let mut after_for: Option<String> = None;
                    let mut saw_for = false;
                    while j < end && !self.is_punct(j, '{') {
                        match self.ident_at(j) {
                            Some("for") => {
                                saw_for = true;
                                j += 1;
                            }
                            Some("where") => break,
                            Some(s) => {
                                if saw_for {
                                    after_for = Some(s.to_string());
                                } else {
                                    last_ident = Some(s.to_string());
                                }
                                j += 1;
                            }
                            None => {
                                if self.is_punct(j, '<') {
                                    j = self.skip_angles(j);
                                } else {
                                    j += 1;
                                }
                            }
                        }
                    }
                    while j < end && !self.is_punct(j, '{') {
                        j += 1;
                    }
                    if j >= end {
                        i = end;
                        continue;
                    }
                    let body_end = self.match_delim(j, '{', '}');
                    if !pending_cfg_test {
                        let ty = after_for.clone().or(last_ident).unwrap_or_default();
                        let ictx = ImplCtx {
                            ty,
                            trait_impl: saw_for,
                        };
                        self.walk_items(j + 1, body_end - 1, mods, Some(&ictx));
                    }
                    i = body_end;
                    pending_pub = false;
                    pending_cfg_test = false;
                }
                Some("trait") => {
                    let name = self.ident_at(i + 1).unwrap_or("").to_string();
                    if pending_pub && !name.is_empty() {
                        self.out_pub.push(PubItem {
                            name: name.clone(),
                            kind: "trait",
                            line: self.lines.line(self.toks[i].off),
                        });
                    }
                    let mut j = i + 2;
                    while j < end && !self.is_punct(j, '{') && !self.is_punct(j, ';') {
                        j += 1;
                    }
                    if self.is_punct(j, '{') {
                        let body_end = self.match_delim(j, '{', '}');
                        if !pending_cfg_test {
                            // Default trait methods carry real bodies.
                            let ictx = ImplCtx {
                                ty: name,
                                trait_impl: true,
                            };
                            self.walk_items(j + 1, body_end - 1, mods, Some(&ictx));
                        }
                        i = body_end;
                    } else {
                        i = j + 1;
                    }
                    pending_pub = false;
                    pending_cfg_test = false;
                }
                Some("fn") => {
                    i = self.handle_fn(i, end, mods, ictx, pending_pub, pending_cfg_test);
                    pending_pub = false;
                    pending_cfg_test = false;
                }
                Some(k @ ("struct" | "enum" | "union")) => {
                    let name = self.ident_at(i + 1).unwrap_or("").to_string();
                    if pending_pub && !pending_cfg_test && !name.is_empty() {
                        self.out_pub.push(PubItem {
                            name,
                            kind: if k == "enum" { "enum" } else { "struct" },
                            line: self.lines.line(self.toks[i].off),
                        });
                    }
                    // Skip the body so field types don't read as calls.
                    let mut j = i + 2;
                    while j < end && !self.is_punct(j, '{') && !self.is_punct(j, ';') && !self.is_punct(j, '(') {
                        j += 1;
                    }
                    i = if self.is_punct(j, '{') {
                        self.match_delim(j, '{', '}')
                    } else if self.is_punct(j, '(') {
                        self.match_delim(j, '(', ')')
                    } else {
                        j + 1
                    };
                    pending_pub = false;
                    pending_cfg_test = false;
                }
                Some(kc @ ("const" | "static" | "type")) => {
                    let k: &'static str = match kc {
                        "const" => "const",
                        "static" => "static",
                        _ => "type",
                    };
                    // `const fn` is handled by the `fn` arm on the next token.
                    if self.ident_at(i + 1) == Some("fn") {
                        i += 1;
                        continue;
                    }
                    let name = self.ident_at(i + 1).unwrap_or("").to_string();
                    if pending_pub && !pending_cfg_test && !name.is_empty() && ictx.is_none() {
                        self.out_pub.push(PubItem {
                            name,
                            kind: k,
                            line: self.lines.line(self.toks[i].off),
                        });
                    }
                    while i < end && !self.is_punct(i, ';') {
                        // Const initializers can hold braces (arrays of
                        // structs); skip groups to find the true `;`.
                        if self.is_punct(i, '{') {
                            i = self.match_delim(i, '{', '}');
                        } else {
                            i += 1;
                        }
                    }
                    i += 1;
                    pending_pub = false;
                    pending_cfg_test = false;
                }
                _ => {
                    i += 1;
                    pending_pub = false;
                }
            }
        }
    }

    /// `i` points at the `fn` keyword. Extracts the item and returns the
    /// index one past its body (or its `;`).
    fn handle_fn(
        &mut self,
        i: usize,
        end: usize,
        mods: &mut Vec<String>,
        ictx: Option<&ImplCtx>,
        is_pub: bool,
        cfg_test: bool,
    ) -> usize {
        let fn_off = self.toks[i].off;
        let Some(name) = self.ident_at(i + 1).map(str::to_string) else {
            return i + 1;
        };
        // Signature runs to the body `{` or a declaration `;`; generics and
        // parens are skipped as groups so a closure default like
        // `fn f(g: impl Fn() -> Vec<u8>)` cannot end the scan early.
        let mut j = i + 2;
        let mut body_start = None;
        while j < end {
            if self.is_punct(j, '{') {
                body_start = Some(j);
                break;
            }
            if self.is_punct(j, ';') {
                break;
            }
            if self.is_punct(j, '(') {
                j = self.match_delim(j, '(', ')');
            } else if self.is_punct(j, '[') {
                // An array return type `[u8; N]` holds a `;` that is not a
                // declaration terminator.
                j = self.match_delim(j, '[', ']');
            } else if self.is_punct(j, '<') {
                j = self.skip_angles(j);
            } else {
                j += 1;
            }
        }
        let Some(body_start) = body_start else {
            // Bodyless declaration (trait method, extern) — no item.
            return j + 1;
        };
        let body_end = self.match_delim(body_start, '{', '}');

        if cfg_test {
            return body_end;
        }

        // Bind the closest preceding unused annotation.
        let (mut entry, mut cold) = (None, None);
        for a in self.anns.iter_mut() {
            if !a.used && a.off < fn_off {
                a.used = true;
                if a.is_entry {
                    entry = Some(a.arg.clone());
                } else {
                    cold = Some(a.arg.clone());
                }
            }
        }

        let mut id = String::new();
        id.push_str(self.crate_name);
        for m in mods.iter() {
            id.push_str("::");
            id.push_str(m);
        }
        if let Some(c) = ictx {
            id.push_str("::");
            id.push_str(&c.ty);
        }
        id.push_str("::");
        id.push_str(&name);
        let seen = self.id_seen.entry(id.clone()).or_insert(0);
        *seen += 1;
        if *seen > 1 {
            id.push_str(&format!("#{seen}"));
        }

        let mut item = FnItem {
            id,
            name,
            module: mods.clone(),
            impl_type: ictx.map(|c| c.ty.clone()),
            trait_impl: ictx.is_some_and(|c| c.trait_impl),
            is_pub,
            line: self.lines.line(fn_off),
            calls: Vec::new(),
            seeds: Vec::new(),
            entry,
            cold,
        };
        self.scan_body(body_start + 1, body_end - 1, mods, ictx, &mut item);
        self.out_fns.push(item);
        body_end
    }

    /// Scans a fn body for call sites and seeds. Nested items recurse back
    /// into `walk_items` (a nested fn is its own node); closure bodies stay
    /// part of the enclosing fn, which is exactly the attribution the fact
    /// pass wants (the panic executes on the enclosing fn's path).
    fn scan_body(
        &mut self,
        mut i: usize,
        end: usize,
        mods: &mut Vec<String>,
        ictx: Option<&ImplCtx>,
        item: &mut FnItem,
    ) {
        while i < end {
            let t = &self.toks[i];
            if self.in_test(t.off) {
                i += 1;
                continue;
            }
            match &t.kind {
                TokenKind::Ident(name) => {
                    match name.as_str() {
                        "fn" | "mod" | "impl" | "trait" => {
                            // Nested item: let the item walker own it.
                            let before = i;
                            let consumed = self.walk_one_nested(i, end, mods, ictx);
                            i = consumed.max(before + 1);
                            continue;
                        }
                        _ => {}
                    }
                    if KEYWORDS.contains(&name.as_str()) {
                        i += 1;
                        continue;
                    }
                    let line = self.lines.line(t.off);
                    // Macro invocation `name!(…)`.
                    if self.is_punct(i + 1, '!') {
                        if PANIC_MACROS.contains(&name.as_str()) {
                            item.seeds.push(Seed {
                                fact: Fact::Panic,
                                line,
                                what: format!("{name}!"),
                            });
                        } else if ALLOC_MACROS.contains(&name.as_str()) {
                            item.seeds.push(Seed {
                                fact: Fact::Alloc,
                                line,
                                what: format!("{name}!"),
                            });
                        }
                        i += 2;
                        continue;
                    }
                    // Nondeterminism sources by bare name.
                    match name.as_str() {
                        "Instant" | "SystemTime" => item.seeds.push(Seed {
                            fact: Fact::Nondet,
                            line,
                            what: format!("std::time::{name}"),
                        }),
                        "HashMap" | "HashSet" => item.seeds.push(Seed {
                            fact: Fact::Nondet,
                            line,
                            what: format!("{name} (hash iteration order)"),
                        }),
                        "thread" => {
                            let after_std = i >= 3
                                && self.is_punct(i - 1, ':')
                                && self.is_punct(i - 2, ':')
                                && self.ident_at(i - 3) == Some("std");
                            let before_path =
                                self.is_punct(i + 1, ':') && self.is_punct(i + 2, ':');
                            if after_std || before_path {
                                item.seeds.push(Seed {
                                    fact: Fact::Nondet,
                                    line,
                                    what: "std::thread".to_string(),
                                });
                            }
                        }
                        _ => {}
                    }
                    // Call shapes: `name(` or `name::<T>(`.
                    let mut call_paren = None;
                    if self.is_punct(i + 1, '(') {
                        call_paren = Some(i + 1);
                    } else if self.is_punct(i + 1, ':')
                        && self.is_punct(i + 2, ':')
                        && self.is_punct(i + 3, '<')
                    {
                        let after = self.skip_angles(i + 3);
                        if self.is_punct(after, '(') {
                            call_paren = Some(after);
                        }
                    }
                    if call_paren.is_some() {
                        if i > 0 && self.is_punct(i - 1, '.') {
                            // Method call; keep the receiver hint.
                            let receiver = if i >= 2 {
                                self.ident_at(i - 2).map(str::to_string)
                            } else {
                                None
                            };
                            if matches!(name.as_str(), "unwrap" | "expect") {
                                item.seeds.push(Seed {
                                    fact: Fact::Panic,
                                    line,
                                    what: format!(".{name}()"),
                                });
                            }
                            if ALLOC_METHODS.contains(&name.as_str()) {
                                item.seeds.push(Seed {
                                    fact: Fact::Alloc,
                                    line,
                                    what: format!(".{name}()"),
                                });
                            }
                            item.calls.push(CallSite::Method {
                                name: name.clone(),
                                receiver,
                                line,
                            });
                        } else {
                            // Qualified or bare call: walk the `a::b::` prefix.
                            let mut path = vec![name.clone()];
                            let mut k = i;
                            while k >= 2
                                && self.is_punct(k - 1, ':')
                                && self.is_punct(k - 2, ':')
                                && k >= 3
                                && self.ident_at(k - 3).is_some()
                            {
                                path.insert(0, self.ident_at(k - 3).unwrap_or("").to_string());
                                k -= 3;
                            }
                            if path.len() == 2 {
                                let pair = (path[0].as_str(), path[1].as_str());
                                if ALLOC_ASSOC.contains(&pair) {
                                    item.seeds.push(Seed {
                                        fact: Fact::Alloc,
                                        line,
                                        what: format!("{}::{}", path[0], path[1]),
                                    });
                                }
                            }
                            item.calls.push(CallSite::Direct { path, line });
                        }
                    }
                    i += 1;
                }
                TokenKind::Punct('#') => {
                    let (j, _) = self.skip_attr(i);
                    i = j;
                }
                TokenKind::Punct('[') => {
                    // Index expression (same shape test as the syntactic
                    // hot-path-index rule).
                    let indexing = if i == 0 {
                        false
                    } else {
                        match &self.toks[i - 1].kind {
                            TokenKind::Ident(s) => !KEYWORDS.contains(&s.as_str()),
                            TokenKind::Punct(')') | TokenKind::Punct(']') => true,
                            _ => false,
                        }
                    };
                    if indexing {
                        // Constant indices into arrays (`w[0]`) cannot be
                        // told apart from slice indexing here; both seed,
                        // the audited allow at the site settles it.
                        item.seeds.push(Seed {
                            fact: Fact::Panic,
                            line: self.lines.line(t.off),
                            what: "slice-index".to_string(),
                        });
                    }
                    i += 1;
                }
                TokenKind::Punct(c @ ('/' | '%')) => {
                    // Integer division/remainder by a non-literal divisor.
                    let lhs_expr = i > 0
                        && match &self.toks[i - 1].kind {
                            TokenKind::Ident(s) => !KEYWORDS.contains(&s.as_str()),
                            TokenKind::Num(_)
                            | TokenKind::Punct(')')
                            | TokenKind::Punct(']') => true,
                            _ => false,
                        };
                    let mut r = i + 1;
                    if self.is_punct(r, '=') {
                        r += 1; // compound `/=` `%=`
                    }
                    let rhs_nonliteral = match self.toks.get(r).map(|t| &t.kind) {
                        Some(TokenKind::Ident(s)) => !KEYWORDS.contains(&s.as_str()),
                        Some(TokenKind::Punct('(')) => true,
                        _ => false,
                    };
                    if lhs_expr && rhs_nonliteral {
                        item.seeds.push(Seed {
                            fact: Fact::Panic,
                            line: self.lines.line(t.off),
                            what: format!("integer `{c}` by non-literal divisor"),
                        });
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
    }

    /// Dispatches one nested item from inside a fn body; returns the index
    /// one past it.
    fn walk_one_nested(
        &mut self,
        i: usize,
        end: usize,
        mods: &mut Vec<String>,
        ictx: Option<&ImplCtx>,
    ) -> usize {
        match self.ident_at(i) {
            Some("fn") => self.handle_fn(i, end, mods, ictx, false, false),
            Some("mod") if self.is_punct(i + 2, '{') => {
                let name = self.ident_at(i + 1).unwrap_or("").to_string();
                let body_end = self.match_delim(i + 2, '{', '}');
                mods.push(name);
                self.walk_items(i + 3, body_end - 1, mods, None);
                mods.pop();
                body_end
            }
            Some("impl") | Some("trait") => {
                // Rare inside bodies; reuse the item walker on the span up
                // to the matching brace of the item's body.
                let mut j = i + 1;
                while j < end && !self.is_punct(j, '{') {
                    j += 1;
                }
                if j >= end {
                    return end;
                }
                let body_end = self.match_delim(j, '{', '}');
                self.walk_items(i, body_end, mods, ictx);
                body_end
            }
            _ => i + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file("crates/x/src/m.rs", "x", &["m".to_string()], src)
    }

    #[test]
    fn extracts_free_and_impl_fns_with_ids() {
        let p = parse(
            "pub fn free() {}\n\
             struct T;\n\
             impl T { pub fn meth(&self) {} }\n\
             impl std::fmt::Display for T { fn fmt(&self) {} }\n",
        );
        let ids: Vec<&str> = p.fns.iter().map(|f| f.id.as_str()).collect();
        assert_eq!(ids, ["x::m::free", "x::m::T::meth", "x::m::T::fmt"]);
        assert!(p.fns[0].is_pub && !p.fns[0].trait_impl);
        assert!(p.fns[1].is_pub && !p.fns[1].trait_impl);
        assert!(!p.fns[2].is_pub && p.fns[2].trait_impl);
    }

    #[test]
    fn inline_mods_nest_into_the_id() {
        let p = parse("mod inner { pub fn f() {} mod deep { fn g() {} } }");
        let ids: Vec<&str> = p.fns.iter().map(|f| f.id.as_str()).collect();
        assert_eq!(ids, ["x::m::inner::f", "x::m::inner::deep::g"]);
    }

    #[test]
    fn call_sites_direct_qualified_and_method() {
        let p = parse(
            "fn f(nic: &mut Nic) { helper(); a::b::qualified(1); nic.rx_process(0); \
             self.pump(); Vec::<u8>::new(); }",
        );
        let f = &p.fns[0];
        let mut direct = 0;
        let mut method = 0;
        for c in &f.calls {
            match c {
                CallSite::Direct { .. } => direct += 1,
                CallSite::Method { name, receiver, .. } => {
                    method += 1;
                    if name == "rx_process" {
                        assert_eq!(receiver.as_deref(), Some("nic"));
                    }
                    if name == "pump" {
                        assert_eq!(receiver.as_deref(), Some("self"));
                    }
                }
            }
        }
        assert_eq!(direct, 3, "{:?}", f.calls);
        assert_eq!(method, 2, "{:?}", f.calls);
    }

    #[test]
    fn seeds_panic_alloc_nondet() {
        let p = parse(
            "fn f(x: Option<u8>, v: &[u8], n: usize) -> u8 {\n\
               let a = x.unwrap();\n\
               let b = v[0];\n\
               let c = 10 / n;\n\
               let d = Vec::new();\n\
               let e = format!(\"{a}\");\n\
               let t = Instant::now();\n\
               assert!(n > 0);\n\
               a\n\
             }",
        );
        let f = &p.fns[0];
        let whats: Vec<&str> = f.seeds.iter().map(|s| s.what.as_str()).collect();
        assert!(whats.contains(&".unwrap()"), "{whats:?}");
        assert!(whats.contains(&"slice-index"), "{whats:?}");
        assert!(whats.iter().any(|w| w.starts_with("integer `/`")), "{whats:?}");
        assert!(whats.contains(&"Vec::new"), "{whats:?}");
        assert!(whats.contains(&"format!"), "{whats:?}");
        assert!(whats.contains(&"std::time::Instant"), "{whats:?}");
        assert!(whats.contains(&"assert!"), "{whats:?}");
    }

    #[test]
    fn literal_divisor_and_type_brackets_do_not_seed() {
        let p = parse("fn f(n: usize) -> [u8; 2] { let x = n / 2; let y = n % 8; [0, 0] }");
        assert!(p.fns[0].seeds.is_empty(), "{:?}", p.fns[0].seeds);
    }

    #[test]
    fn cfg_test_items_are_pruned() {
        let p = parse(
            "fn live() { helper(); }\n\
             #[cfg(test)]\nmod tests {\n  fn helper() { x.unwrap(); }\n  #[test]\n  fn t() { panic!(); }\n}\n\
             #[cfg(test)]\nfn twin() { y.unwrap(); }\n",
        );
        let ids: Vec<&str> = p.fns.iter().map(|f| f.id.as_str()).collect();
        assert_eq!(ids, ["x::m::live"], "test items must not become nodes");
    }

    #[test]
    fn entry_and_cold_annotations_bind_to_next_fn() {
        let p = parse(
            "// ano-lint: entry(hot-path)\npub fn hot() {}\n\
             // ano-lint: cold(install path, runs per flow not per packet)\nfn install() {}\n",
        );
        assert_eq!(p.fns[0].entry.as_deref(), Some("hot-path"));
        assert_eq!(
            p.fns[1].cold.as_deref(),
            Some("install path, runs per flow not per packet")
        );
        assert!(p.diags.is_empty(), "{:?}", p.diags);
    }

    #[test]
    fn bad_annotations_are_diagnosed() {
        let p = parse("// ano-lint: entry(warm-path)\nfn f() {}\n");
        assert_eq!(p.diags.len(), 1, "{:?}", p.diags);
        assert!(p.diags[0].message.contains("unknown entry class"));
        let p = parse("// ano-lint: cold()\nfn f() {}\n");
        assert!(p.diags[0].message.contains("justification"));
        let p = parse("fn f() {}\n// ano-lint: entry(hot-path)\n");
        assert!(p.diags[0].message.contains("does not precede a fn"));
    }

    #[test]
    fn closure_seeds_attribute_to_enclosing_fn() {
        let p = parse("fn f(v: Vec<Option<u8>>) { v.iter().map(|x| x.unwrap()); }");
        assert!(p.fns[0].seeds.iter().any(|s| s.what == ".unwrap()"));
    }

    #[test]
    fn nested_fn_is_its_own_item() {
        let p = parse("fn outer() { fn inner() { x.unwrap(); } inner(); }");
        let ids: Vec<&str> = p.fns.iter().map(|f| f.id.as_str()).collect();
        assert!(ids.contains(&"x::m::outer") && ids.contains(&"x::m::inner"), "{ids:?}");
        let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
        assert!(outer.seeds.is_empty(), "inner's unwrap must not leak out");
    }

    #[test]
    fn pub_items_recorded_for_dead_export() {
        let p = parse(
            "pub struct S { pub f: u8 }\npub enum E { A }\npub const C: u8 = 0;\n\
             pub trait Tr {}\npub(crate) fn internal() {}\npub fn exported() {}\n",
        );
        let names: Vec<&str> = p.pub_items.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, ["S", "E", "C", "Tr"]);
        let exported = p.fns.iter().find(|f| f.name == "exported").unwrap();
        assert!(exported.is_pub);
        let internal = p.fns.iter().find(|f| f.name == "internal").unwrap();
        assert!(!internal.is_pub, "pub(crate) is not an export");
    }

    #[test]
    fn ident_counts_cover_test_modules_too() {
        let p = parse("fn f() {}\n#[cfg(test)]\nmod t { fn g() { f(); } }\n");
        assert_eq!(p.ident_counts.get("f").copied(), Some(2));
    }
}
