//! The cross-crate call graph: every parsed `fn` becomes a node keyed by
//! `crate::module::fn`, and every call site either resolves to edges or
//! lands in an explicit unresolved bucket.
//!
//! Resolution is heuristic by design — there is no type checker here — but
//! the heuristics err on the side the analysis needs:
//!
//! * **qualified calls** (`a::b::f`, `Type::f`, `Self::f`) match by path
//!   suffix, so cross-crate calls resolve without `use`-tracking;
//! * **bare calls** (`f(…)`) prefer the caller's module, then the caller's
//!   crate, then a workspace-unique match;
//! * **method calls** (`recv.m(…)`) resolve by receiver name: `self.m()`
//!   binds inside the caller's impl type; other receivers match a type
//!   whose name contains the receiver identifier (`nic` → `Nic`,
//!   `tcp` → `TcpSender`); a workspace-unique method name resolves
//!   regardless of receiver;
//! * anything that matches *some* workspace fn by name but cannot be
//!   pinned to one goes into [`Graph::unresolved`] — visible in the
//!   summary so the soundness gap is measured, not silent. Names that
//!   match nothing are std/core calls and are dropped.

use std::collections::BTreeMap;

use crate::parser::{CallSite, FnItem, ParsedFile};

/// One node of the call graph (a parsed fn plus its origin).
#[derive(Debug)]
pub struct Node {
    pub item: FnItem,
    /// Workspace-relative file the fn lives in.
    pub file: String,
    pub crate_name: String,
}

/// One resolved edge: `caller` calls `callee` at `line` of the caller's
/// file.
#[derive(Clone, Copy, Debug)]
pub struct Edge {
    pub callee: usize,
    pub line: usize,
}

/// A call site that named a workspace fn but could not be pinned to one.
#[derive(Debug)]
pub struct Unresolved {
    pub caller: usize,
    pub name: String,
    pub line: usize,
    pub candidates: usize,
}

/// The whole-workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    pub nodes: Vec<Node>,
    /// Adjacency: `edges[i]` are the resolved callees of node `i`.
    pub edges: Vec<Vec<Edge>>,
    pub unresolved: Vec<Unresolved>,
    /// Crates that contributed at least one parsed file (even if fn-free).
    pub crates: Vec<String>,
}

impl Graph {
    /// Node index by fn id.
    pub fn node_by_id(&self, id: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.item.id == id)
    }

    /// All `entry(<class>)` nodes.
    pub fn entries(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].item.entry.is_some())
            .collect()
    }

    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }
}

/// Builds the graph from every parsed file.
pub fn build(files: &[ParsedFile]) -> Graph {
    let mut g = Graph::default();
    for f in files {
        if !g.crates.contains(&f.crate_name) {
            g.crates.push(f.crate_name.clone());
        }
        for item in &f.fns {
            g.nodes.push(Node {
                item: item.clone(),
                file: f.path.clone(),
                crate_name: f.crate_name.clone(),
            });
        }
    }
    g.crates.sort();

    // Indexes. Method index excludes free fns (no impl type).
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, n) in g.nodes.iter().enumerate() {
        by_name.entry(&n.item.name).or_default().push(i);
        if n.item.impl_type.is_some() {
            methods.entry(&n.item.name).or_default().push(i);
        }
    }

    g.edges = vec![Vec::new(); g.nodes.len()];
    for caller in 0..g.nodes.len() {
        // The split keeps the borrow checker happy: resolution only reads.
        let calls = g.nodes[caller].item.calls.clone();
        for call in &calls {
            match resolve(&g, &by_name, &methods, caller, call) {
                Resolution::Edges(targets) => {
                    for t in targets {
                        g.edges[caller].push(Edge {
                            callee: t,
                            line: call.line(),
                        });
                    }
                }
                Resolution::Unresolved { name, candidates } => {
                    g.unresolved.push(Unresolved {
                        caller,
                        name,
                        line: call.line(),
                        candidates,
                    });
                }
                Resolution::External => {}
            }
        }
    }
    g
}

enum Resolution {
    Edges(Vec<usize>),
    Unresolved { name: String, candidates: usize },
    External,
}

/// `snake_or_lower` matches type `CamelCase`? Used for receiver hints:
/// strip `_`, lowercase the type, and test containment (`lru` → `LruSet`,
/// `tcp` → `TcpSender`, `nic` → `Nic`). Short receivers (< 3 chars) only
/// match exactly, so `c`/`h` never bind by accident.
fn receiver_matches(receiver: &str, ty: &str) -> bool {
    let r: String = receiver.chars().filter(|c| *c != '_').collect::<String>().to_lowercase();
    let t = ty.to_lowercase();
    if r.is_empty() {
        return false;
    }
    if r.len() < 3 {
        return r == t;
    }
    t.contains(&r) || r.contains(&t)
}

fn resolve(
    g: &Graph,
    by_name: &BTreeMap<&str, Vec<usize>>,
    methods: &BTreeMap<&str, Vec<usize>>,
    caller: usize,
    call: &CallSite,
) -> Resolution {
    match call {
        CallSite::Direct { path, .. } => resolve_direct(g, by_name, caller, path),
        CallSite::Method { name, receiver, .. } => {
            resolve_method(g, methods, caller, name, receiver.as_deref())
        }
    }
}

fn resolve_direct(
    g: &Graph,
    by_name: &BTreeMap<&str, Vec<usize>>,
    caller: usize,
    path: &[String],
) -> Resolution {
    let Some(name) = path.last() else {
        return Resolution::External;
    };
    let Some(cands) = by_name.get(name.as_str()) else {
        return Resolution::External;
    };

    if path.len() >= 2 {
        let qual = &path[path.len() - 2];
        // `Self::f` / `Type::f`: an impl-type-qualified associated call.
        let ty_target = if qual == "Self" {
            g.nodes[caller].item.impl_type.clone()
        } else if qual.chars().next().is_some_and(char::is_uppercase) {
            Some(qual.clone())
        } else {
            None
        };
        if let Some(ty) = ty_target {
            let hits: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| g.nodes[i].item.impl_type.as_deref() == Some(ty.as_str()))
                .collect();
            return finish(name, cands.len(), hits);
        }
        // Module-qualified: match the path suffix against the node id,
        // ignoring leading `crate`/`super`/`self` segments and mapping the
        // `ano_x` crate-name spelling onto the `x` directory name.
        let suffix: Vec<&str> = path
            .iter()
            .map(String::as_str)
            .filter(|s| !matches!(*s, "crate" | "super" | "self"))
            .map(|s| s.strip_prefix("ano_").unwrap_or(s))
            .collect();
        let hits: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| id_has_suffix(&g.nodes[i].item.id, &suffix))
            .collect();
        return finish(name, cands.len(), hits);
    }

    // Bare call: same module, then same crate, then workspace-unique.
    let c = &g.nodes[caller];
    let same_mod: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&i| {
            g.nodes[i].crate_name == c.crate_name
                && g.nodes[i].item.module == c.item.module
                && g.nodes[i].item.impl_type.is_none()
        })
        .collect();
    if !same_mod.is_empty() {
        return Resolution::Edges(same_mod);
    }
    let same_crate: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&i| g.nodes[i].crate_name == c.crate_name && g.nodes[i].item.impl_type.is_none())
        .collect();
    if !same_crate.is_empty() {
        return Resolution::Edges(same_crate);
    }
    let free: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&i| g.nodes[i].item.impl_type.is_none())
        .collect();
    finish(name, cands.len(), free)
}

/// Does `id` (`crate::m1::m2::[Type::]name[#k]`) end with the call-path
/// segments, in order? The id's optional `#k` disambiguator is stripped.
fn id_has_suffix(id: &str, suffix: &[&str]) -> bool {
    let segs: Vec<&str> = id.split("::").map(|s| s.split('#').next().unwrap_or(s)).collect();
    if suffix.len() > segs.len() {
        return false;
    }
    // The suffix may skip the impl-type segment (`m::f` matching
    // `crate::m::Type::f`): try both the strict tail and the tail with the
    // type segment removed.
    if segs.ends_with(suffix) {
        return true;
    }
    if segs.len() >= 2 {
        let mut no_ty = segs.clone();
        no_ty.remove(segs.len() - 2);
        return no_ty.ends_with(suffix);
    }
    false
}

fn resolve_method(
    g: &Graph,
    methods: &BTreeMap<&str, Vec<usize>>,
    caller: usize,
    name: &str,
    receiver: Option<&str>,
) -> Resolution {
    let Some(cands) = methods.get(name) else {
        return Resolution::External;
    };
    if cands.len() == 1 {
        return Resolution::Edges(cands.clone());
    }
    // `self.m()` binds inside the caller's own impl type first.
    if receiver == Some("self") {
        if let Some(ty) = g.nodes[caller].item.impl_type.as_deref() {
            let hits: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| g.nodes[i].item.impl_type.as_deref() == Some(ty))
                .collect();
            if !hits.is_empty() {
                return Resolution::Edges(hits);
            }
        }
    }
    if let Some(r) = receiver.filter(|r| *r != "self") {
        let hits: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| {
                g.nodes[i]
                    .item
                    .impl_type
                    .as_deref()
                    .is_some_and(|t| receiver_matches(r, t))
            })
            .collect();
        if !hits.is_empty() {
            return Resolution::Edges(hits);
        }
    }
    Resolution::Unresolved {
        name: name.to_string(),
        candidates: cands.len(),
    }
}

fn finish(name: &str, total: usize, hits: Vec<usize>) -> Resolution {
    match hits.len() {
        0 => {
            if total == 0 {
                Resolution::External
            } else {
                Resolution::Unresolved {
                    name: name.to_string(),
                    candidates: total,
                }
            }
        }
        _ => Resolution::Edges(hits),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn graph_of(files: &[(&str, &str, &[&str], &str)]) -> Graph {
        let parsed: Vec<_> = files
            .iter()
            .map(|(path, krate, mods, src)| {
                let mods: Vec<String> = mods.iter().map(|s| s.to_string()).collect();
                parse_file(path, krate, &mods, src)
            })
            .collect();
        build(&parsed)
    }

    fn edge_ids(g: &Graph, from: &str) -> Vec<String> {
        let i = g.node_by_id(from).unwrap_or_else(|| panic!("no node {from}"));
        let mut out: Vec<String> = g.edges[i]
            .iter()
            .map(|e| g.nodes[e.callee].item.id.clone())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn bare_call_prefers_same_module_then_crate() {
        let g = graph_of(&[
            ("crates/a/src/m.rs", "a", &["m"], "fn f() { helper(); } fn helper() {}"),
            ("crates/a/src/n.rs", "a", &["n"], "fn helper() {}"),
            ("crates/b/src/m.rs", "b", &["m"], "fn helper() {}"),
        ]);
        assert_eq!(edge_ids(&g, "a::m::f"), ["a::m::helper"]);
    }

    #[test]
    fn qualified_call_resolves_cross_crate() {
        let g = graph_of(&[
            ("crates/a/src/lib.rs", "a", &[], "fn f() { b::util::helper(); ano_c::deep(); }"),
            ("crates/b/src/util.rs", "b", &["util"], "pub fn helper() {}"),
            ("crates/c/src/lib.rs", "c", &[], "pub fn deep() {}"),
        ]);
        assert_eq!(edge_ids(&g, "a::f"), ["b::util::helper", "c::deep"]);
    }

    #[test]
    fn type_qualified_and_self_calls() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "a",
            &[],
            "struct Nic; impl Nic { fn new() -> Nic { Nic } fn go(&self) { Self::new(); } }\n\
             fn f() { Nic::new(); }",
        )]);
        assert_eq!(edge_ids(&g, "a::f"), ["a::Nic::new"]);
        assert_eq!(edge_ids(&g, "a::Nic::go"), ["a::Nic::new"]);
    }

    #[test]
    fn method_receiver_heuristics() {
        let g = graph_of(&[
            (
                "crates/core/src/nic.rs",
                "core",
                &["nic"],
                "pub struct Nic; impl Nic { pub fn rx_process(&mut self) {} pub fn poll(&self) {} }",
            ),
            (
                "crates/tcp/src/sender.rs",
                "tcp",
                &["sender"],
                "pub struct TcpSender; impl TcpSender { pub fn poll(&self) {} }",
            ),
            (
                "crates/stack/src/rt.rs",
                "stack",
                &["rt"],
                "fn pump(nic: &mut Nic, tcp: &TcpSender) { nic.rx_process(); nic.poll(); tcp.poll(); }",
            ),
        ]);
        // rx_process: workspace-unique → resolves without the receiver.
        // poll: ambiguous, pinned by receiver name on both sides.
        assert_eq!(
            edge_ids(&g, "stack::rt::pump"),
            ["core::nic::Nic::poll", "core::nic::Nic::rx_process", "tcp::sender::TcpSender::poll"]
        );
        assert!(g.unresolved.is_empty(), "{:?}", g.unresolved);
    }

    #[test]
    fn ambiguous_method_goes_to_unresolved_bucket() {
        let g = graph_of(&[
            ("crates/a/src/lib.rs", "a", &[], "struct A; impl A { fn go(&self) {} }"),
            ("crates/b/src/lib.rs", "b", &[], "struct B; impl B { fn go(&self) {} }"),
            (
                "crates/c/src/lib.rs",
                "c",
                &[],
                "fn f(x: &Thing) { x.go(); }",
            ),
        ]);
        assert!(edge_ids(&g, "c::f").is_empty());
        assert_eq!(g.unresolved.len(), 1);
        assert_eq!(g.unresolved[0].name, "go");
        assert_eq!(g.unresolved[0].candidates, 2);
    }

    #[test]
    fn std_calls_are_external_not_unresolved() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "a",
            &[],
            "fn f(v: &[u8]) { v.iter(); String::from(\"x\"); std::mem::take(&mut 0); }",
        )]);
        assert!(g.unresolved.is_empty(), "{:?}", g.unresolved);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn crates_are_recorded_even_when_fn_free() {
        let g = graph_of(&[
            ("crates/a/src/lib.rs", "a", &[], "pub use x::Y;"),
            ("crates/b/src/lib.rs", "b", &[], "fn f() {}"),
        ]);
        assert_eq!(g.crates, ["a", "b"]);
    }
}
