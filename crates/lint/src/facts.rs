//! Fact propagation over the call graph: turns "this helper two crates
//! away can panic" into a hot-path diagnostic with the full call chain.
//!
//! Three fact lattices, each a may-analysis seeded by token patterns the
//! parser recorded and propagated along resolved call edges:
//!
//! * **may-panic** (`transitive-panic`): `unwrap`/`expect`, the panic
//!   macro family, slice indexing, integer `/`/`%` by a non-literal
//!   divisor;
//! * **nondeterminism taint** (`transitive-nondet`): wall-clock reads,
//!   OS threads, hash-ordered collections;
//! * **may-allocate** (`hot-alloc`): `Vec::new`/`Box::new`-style
//!   constructors, `format!`/`vec!`, `.clone()`/`.to_vec()`/`.collect()`.
//!
//! Every fn annotated `// ano-lint: entry(hot-path)` is a root: any seed
//! reachable from a root (breadth-first, so chains are shortest) becomes a
//! diagnostic at the *seed site* — that is where the fix or the audited
//! `allow` belongs — carrying the entry→seed call chain. A fn annotated
//! `// ano-lint: cold(<why>)` is an audited allocation boundary: the
//! **may-allocate** walk stops there (a per-flow install path may allocate)
//! but panic and taint still propagate through it — a cold path that
//! panics still aborts the whole schedule.
//!
//! The pass also builds the ranked allocation-site inventory behind
//! `ano-lint --alloc-report`: every alloc seed reachable from an entry,
//! suppressed or not, ranked by how many entries reach it and how close to
//! the entry it sits. That list is the shopping list for the arena/slab
//! work (ROADMAP item 1).

use std::collections::BTreeMap;

use crate::diag::{Diagnostic, Severity};
use crate::graph::Graph;
use crate::parser::Fact;

/// One row of the `--alloc-report` inventory.
#[derive(Clone, Debug)]
pub struct AllocEntry {
    pub file: String,
    pub line: usize,
    pub what: String,
    pub in_fn: String,
    /// How many `entry(hot-path)` roots reach this site.
    pub entries: usize,
    /// Fewest call hops from any root (0 = in the entry fn itself).
    pub depth: usize,
    /// True when an audited `allow` covers the site (still inventoried —
    /// suppression silences the error, not the measurement).
    pub suppressed: bool,
}

impl AllocEntry {
    /// One stable text row (the snapshot format CI diffs).
    pub fn render(&self, rank: usize) -> String {
        format!(
            "{rank:3}. {}:{} `{}` in {} — {} entr{}, depth {}{}",
            self.file,
            self.line,
            self.what,
            self.in_fn,
            self.entries,
            if self.entries == 1 { "y" } else { "ies" },
            self.depth,
            if self.suppressed { "" } else { " [UNSUPPRESSED]" },
        )
    }
}

/// Output of the fact pass.
#[derive(Debug, Default)]
pub struct FactsResult {
    pub diags: Vec<Diagnostic>,
    pub alloc_report: Vec<AllocEntry>,
}

/// Runs the three lattices over `g`.
///
/// `allow(file, line, rules)` must return true when an inline suppression
/// covers the given site for *any* of the rule ids (the transitive rule or
/// its per-file syntactic siblings — one audited allow covers both views),
/// marking the suppression used as a side effect.
pub fn analyze(g: &Graph, mut allow: impl FnMut(&str, usize, &[&str]) -> bool) -> FactsResult {
    let mut out = FactsResult::default();
    let entries = g.entries();
    if entries.is_empty() {
        return out;
    }

    // Per-seed suppression check, evaluated once up front so suppressions
    // are marked used even for seeds that turn out to be unreachable (the
    // allow documents the site either way).
    // seed key: (node, seed index) → suppressed?
    let mut seed_allowed: BTreeMap<(usize, usize), bool> = BTreeMap::new();
    for (ni, node) in g.nodes.iter().enumerate() {
        for (si, seed) in node.item.seeds.iter().enumerate() {
            let mut rules: Vec<&str> = vec![seed.fact.rule()];
            rules.extend_from_slice(seed.fact.syntactic_rule());
            let covered = allow(&node.file, seed.line, &rules);
            seed_allowed.insert((ni, si), covered);
        }
    }

    for fact in [Fact::Panic, Fact::Nondet, Fact::Alloc] {
        let reach = multi_source_bfs(g, &entries, fact);

        if fact == Fact::Alloc {
            // Inventory first: every reachable alloc seed, suppressed or not.
            let per_entry: Vec<BTreeMap<usize, usize>> = entries
                .iter()
                .map(|&e| multi_source_bfs(g, &[e], fact).depth)
                .collect();
            for (ni, node) in g.nodes.iter().enumerate() {
                let Some(&d) = reach.depth.get(&ni) else {
                    continue;
                };
                let n_entries = per_entry.iter().filter(|m| m.contains_key(&ni)).count();
                for (si, seed) in node.item.seeds.iter().enumerate() {
                    if seed.fact != Fact::Alloc {
                        continue;
                    }
                    out.alloc_report.push(AllocEntry {
                        file: node.file.clone(),
                        line: seed.line,
                        what: seed.what.clone(),
                        in_fn: node.item.id.clone(),
                        entries: n_entries,
                        depth: d,
                        suppressed: seed_allowed.get(&(ni, si)).copied().unwrap_or(false),
                    });
                }
            }
            out.alloc_report.sort_by(|a, b| {
                (std::cmp::Reverse(a.entries), a.depth, &a.file, a.line, &a.what).cmp(&(
                    std::cmp::Reverse(b.entries),
                    b.depth,
                    &b.file,
                    b.line,
                    &b.what,
                ))
            });
        }

        // Diagnostics: one per (rule, file, line) with the shortest chain.
        let mut seen: BTreeMap<(&str, String, usize), ()> = BTreeMap::new();
        for (ni, node) in g.nodes.iter().enumerate() {
            if !reach.depth.contains_key(&ni) {
                continue;
            }
            for (si, seed) in node.item.seeds.iter().enumerate() {
                if seed.fact != fact || seed_allowed.get(&(ni, si)).copied().unwrap_or(false) {
                    continue;
                }
                let key = (fact.rule(), node.file.clone(), seed.line);
                if seen.contains_key(&key) {
                    continue;
                }
                seen.insert(key, ());
                let chain = reach.chain_to(g, ni);
                let entry_id = chain.first().cloned().unwrap_or_default();
                let entry_name = entry_id.split(" (").next().unwrap_or("").to_string();
                let depth = chain.len().saturating_sub(1);
                let verb = match fact {
                    Fact::Panic => "can panic mid-schedule and",
                    Fact::Nondet => "reads process-varying state and",
                    Fact::Alloc => "allocates and",
                };
                out.diags.push(Diagnostic {
                    rule: fact.rule(),
                    severity: Severity::Error,
                    file: node.file.clone(),
                    line: seed.line,
                    col: 1,
                    message: format!(
                        "`{}` {verb} is reachable from hot-path entry `{entry_name}` \
                         ({depth} call{} deep); fix the site or add an audited \
                         `// ano-lint: allow({})` with a justification",
                        seed.what,
                        if depth == 1 { "" } else { "s" },
                        fact.rule(),
                    ),
                    chain,
                });
            }
        }
    }

    out.diags.sort_by(|a, b| {
        (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule))
    });
    out
}

/// Reachability with shortest-path parents from a root set.
struct Reach {
    /// node → hops from the nearest root.
    depth: BTreeMap<usize, usize>,
    /// node → predecessor on a shortest path (roots map to themselves).
    parent: BTreeMap<usize, usize>,
}

impl Reach {
    /// The chain root → … → `node`, each hop `fn-id (file:def-line)`.
    fn chain_to(&self, g: &Graph, node: usize) -> Vec<String> {
        let mut rev = vec![node];
        let mut cur = node;
        while let Some(&p) = self.parent.get(&cur) {
            if p == cur {
                break;
            }
            rev.push(p);
            cur = p;
        }
        rev.reverse();
        rev.iter()
            .map(|&i| {
                let n = &g.nodes[i];
                format!("{} ({}:{})", n.item.id, n.file, n.item.line)
            })
            .collect()
    }
}

/// BFS over call edges from `roots`. For [`Fact::Alloc`] the walk refuses
/// to *enter* a `cold(…)` node: its body and callees are an audited
/// allocation boundary. Panic/taint walks traverse everything — cold code
/// still runs on the schedule.
fn multi_source_bfs(g: &Graph, roots: &[usize], fact: Fact) -> Reach {
    let mut depth = BTreeMap::new();
    let mut parent = BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    for &r in roots {
        depth.insert(r, 0usize);
        parent.insert(r, r);
        queue.push_back(r);
    }
    while let Some(i) = queue.pop_front() {
        let d = depth[&i];
        for e in &g.edges[i] {
            let j = e.callee;
            if depth.contains_key(&j) {
                continue;
            }
            if fact == Fact::Alloc && g.nodes[j].item.cold.is_some() {
                continue;
            }
            depth.insert(j, d + 1);
            parent.insert(j, i);
            queue.push_back(j);
        }
    }
    Reach { depth, parent }
}

/// The dead-export pass: a `pub` item whose name occurs nowhere in the
/// workspace beyond its own definitions is API nobody calls — not even
/// tests, benches, or examples (`extra_idents` carries their identifier
/// counts, since those trees are not otherwise analyzed).
///
/// Conservative by construction: any other mention of the name — a call, a
/// re-export, an `impl` block, a same-named item elsewhere — counts as use,
/// so a finding means the name is verifiably orphaned. Trait-impl methods
/// are skipped (their names are the trait's choice, not an export), as are
/// `main`/bin roots.
pub fn dead_exports(
    g: &Graph,
    ident_totals: &BTreeMap<String, usize>,
    extra_idents: &BTreeMap<String, usize>,
) -> Vec<Diagnostic> {
    // How many tokens each name spends on *definitions* we know about.
    let mut def_counts: BTreeMap<&str, usize> = BTreeMap::new();
    for n in &g.nodes {
        *def_counts.entry(n.item.name.as_str()).or_insert(0) += 1;
    }

    let mut out = Vec::new();
    let mut flag = |name: &str, kind: &str, file: &str, line: usize, defs: usize| {
        let total = ident_totals.get(name).copied().unwrap_or(0)
            + extra_idents.get(name).copied().unwrap_or(0);
        if total > defs {
            return;
        }
        out.push(Diagnostic {
            rule: "dead-export",
            severity: Severity::Warning,
            file: file.to_string(),
            line,
            col: 1,
            message: format!(
                "pub {kind} `{name}` is never referenced anywhere in the workspace \
                 (src, tests, benches, or examples); remove it or justify with \
                 `// ano-lint: allow(dead-export)`"
            ),
            chain: Vec::new(),
        });
    };

    for n in &g.nodes {
        let it = &n.item;
        // `entry(...)` fns are declared roots: invoked from outside the
        // graph by definition, so absence of callers is not deadness.
        if !it.is_pub || it.trait_impl || it.name == "main" || it.entry.is_some() {
            continue;
        }
        let defs = def_counts.get(it.name.as_str()).copied().unwrap_or(1);
        flag(&it.name, "fn", &n.file, it.line, defs);
    }
    // Non-fn pub items live on the parsed files; the graph carries only
    // fns, so the engine passes them through `ident_totals` and the caller
    // invokes `dead_pub_items` separately.
    out
}

/// Dead-export check for non-fn `pub` items (structs, enums, traits,
/// consts). `defs` for these is the count of same-named pub items — an
/// `impl` block or field mention elsewhere already counts as use.
pub fn dead_pub_items(
    items: &[(String, &'static str, String, usize)], // (name, kind, file, line)
    ident_totals: &BTreeMap<String, usize>,
    extra_idents: &BTreeMap<String, usize>,
) -> Vec<Diagnostic> {
    let mut def_counts: BTreeMap<&str, usize> = BTreeMap::new();
    for (name, _, _, _) in items {
        *def_counts.entry(name.as_str()).or_insert(0) += 1;
    }
    let mut out = Vec::new();
    for (name, kind, file, line) in items {
        let defs = def_counts.get(name.as_str()).copied().unwrap_or(1);
        let total = ident_totals.get(name).copied().unwrap_or(0)
            + extra_idents.get(name).copied().unwrap_or(0);
        if total > defs {
            continue;
        }
        out.push(Diagnostic {
            rule: "dead-export",
            severity: Severity::Warning,
            file: file.clone(),
            line: *line,
            col: 1,
            message: format!(
                "pub {kind} `{name}` is never referenced anywhere in the workspace \
                 (src, tests, benches, or examples); remove it or justify with \
                 `// ano-lint: allow(dead-export)`"
            ),
            chain: Vec::new(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph;
    use crate::parser::parse_file;

    fn analyze_src(files: &[(&str, &str, &str)]) -> (Graph, FactsResult) {
        let parsed: Vec<_> = files
            .iter()
            .map(|(path, krate, src)| parse_file(path, krate, &[], src))
            .collect();
        let g = graph::build(&parsed);
        let r = analyze(&g, |_, _, _| false);
        (g, r)
    }

    #[test]
    fn transitive_panic_two_hops_with_chain() {
        let (_, r) = analyze_src(&[
            (
                "crates/a/src/lib.rs",
                "a",
                "// ano-lint: entry(hot-path)\npub fn hot() { b::mid(); }",
            ),
            (
                "crates/b/src/lib.rs",
                "b",
                "pub fn mid() { deep(); }\nfn deep(x: Option<u8>) { x.unwrap(); }",
            ),
        ]);
        let panics: Vec<_> = r.diags.iter().filter(|d| d.rule == "transitive-panic").collect();
        assert_eq!(panics.len(), 1, "{:?}", r.diags);
        let d = panics[0];
        assert_eq!(d.file, "crates/b/src/lib.rs");
        assert_eq!(d.chain.len(), 3, "{:?}", d.chain);
        assert!(d.chain[0].starts_with("a::hot "), "{:?}", d.chain);
        assert!(d.chain[2].starts_with("b::deep "), "{:?}", d.chain);
        assert!(d.message.contains("a::hot"), "{}", d.message);
    }

    #[test]
    fn unreachable_seed_is_silent() {
        let (_, r) = analyze_src(&[(
            "crates/a/src/lib.rs",
            "a",
            "// ano-lint: entry(hot-path)\npub fn hot() {}\nfn island(x: Option<u8>) { x.unwrap(); }",
        )]);
        assert!(r.diags.is_empty(), "{:?}", r.diags);
    }

    #[test]
    fn nondet_taint_propagates() {
        let (_, r) = analyze_src(&[(
            "crates/a/src/lib.rs",
            "a",
            "// ano-lint: entry(hot-path)\npub fn hot() { now(); }\n\
             fn now() -> u64 { let t = Instant::now(); 0 }",
        )]);
        assert_eq!(r.diags.len(), 1, "{:?}", r.diags);
        assert_eq!(r.diags[0].rule, "transitive-nondet");
    }

    #[test]
    fn cold_cuts_alloc_but_not_panic() {
        let (_, r) = analyze_src(&[(
            "crates/a/src/lib.rs",
            "a",
            "// ano-lint: entry(hot-path)\npub fn hot() { install(); }\n\
             // ano-lint: cold(per-flow install, not per packet)\n\
             fn install(x: Option<u8>) { let v = Vec::new(); x.unwrap(); }",
        )]);
        let rules: Vec<&str> = r.diags.iter().map(|d| d.rule).collect();
        assert_eq!(rules, ["transitive-panic"], "{:?}", r.diags);
        assert!(r.alloc_report.is_empty(), "{:?}", r.alloc_report);
    }

    #[test]
    fn alloc_report_ranks_by_entries_then_depth() {
        let (_, r) = analyze_src(&[(
            "crates/a/src/lib.rs",
            "a",
            "// ano-lint: entry(hot-path)\npub fn hot1() { shared(); solo(); }\n\
             // ano-lint: entry(hot-path)\npub fn hot2() { shared(); }\n\
             fn shared() { let v = Vec::new(); }\n\
             fn solo() { let b = Box::new(0); }",
        )]);
        assert_eq!(r.alloc_report.len(), 2, "{:?}", r.alloc_report);
        assert_eq!(r.alloc_report[0].what, "Vec::new");
        assert_eq!(r.alloc_report[0].entries, 2);
        assert_eq!(r.alloc_report[1].what, "Box::new");
        assert_eq!(r.alloc_report[1].entries, 1);
        // Both are unsuppressed, so both also error.
        assert_eq!(
            r.diags.iter().filter(|d| d.rule == "hot-alloc").count(),
            2,
            "{:?}",
            r.diags
        );
    }

    #[test]
    fn suppressed_seed_stays_in_inventory_but_not_in_errors() {
        let parsed = vec![parse_file(
            "crates/a/src/lib.rs",
            "a",
            &[],
            "// ano-lint: entry(hot-path)\npub fn hot() { let v = Vec::new(); }",
        )];
        let g = graph::build(&parsed);
        let r = analyze(&g, |_, line, rules| {
            assert!(rules.contains(&"hot-alloc"));
            line == 2
        });
        assert!(r.diags.is_empty(), "{:?}", r.diags);
        assert_eq!(r.alloc_report.len(), 1);
        assert!(r.alloc_report[0].suppressed);
        assert!(!r.alloc_report[0].render(1).contains("UNSUPPRESSED"));
    }

    #[test]
    fn dead_export_flags_orphans_only() {
        let parsed = vec![
            parse_file(
                "crates/a/src/lib.rs",
                "a",
                &[],
                "pub fn used() {}\npub fn orphan() {}\n",
            ),
            parse_file("crates/b/src/lib.rs", "b", &[], "fn f() { used(); }"),
        ];
        let g = graph::build(&parsed);
        let mut totals = BTreeMap::new();
        for p in &parsed {
            for (k, v) in &p.ident_counts {
                *totals.entry(k.clone()).or_insert(0) += v;
            }
        }
        let d = dead_exports(&g, &totals, &BTreeMap::new());
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`orphan`"), "{:?}", d[0]);
        assert_eq!(d[0].severity, Severity::Warning);
    }

    #[test]
    fn test_only_use_counts_as_use() {
        let parsed = vec![parse_file(
            "crates/a/src/lib.rs",
            "a",
            &[],
            "pub fn only_tested() {}\n",
        )];
        let g = graph::build(&parsed);
        let mut totals = BTreeMap::new();
        for p in &parsed {
            for (k, v) in &p.ident_counts {
                *totals.entry(k.clone()).or_insert(0) += v;
            }
        }
        let mut extra = BTreeMap::new();
        extra.insert("only_tested".to_string(), 1usize); // a tests/ file calls it
        assert!(dead_exports(&g, &totals, &extra).is_empty());
    }
}
