//! Micro-bench wrappers around the figure experiments: one representative
//! point per paper figure, so `cargo bench` exercises every experiment
//! family (the `figures` binary regenerates the full sweeps).

use ano_bench::micro::Harness;

use ano_bench::figures;

fn figure_points(h: &mut Harness) {
    let mut g = h.group("figures");
    g.sample_size(10);
    g.bench("fig02_overheads", figures::fig02);
    g.bench("tab01_accelerators", figures::tab01);
    g.bench("fig10_fio_point", || {
        ano_bench::runners::run_fio(&ano_bench::runners::FioCfg {
            size: 256 * 1024,
            depth: 16,
            offload: false,
            window: ano_sim::time::SimDuration::from_millis(10),
            seed: 1,
        })
    });
    g.bench("fig11_iperf_point", || {
        ano_bench::runners::run_iperf(&ano_bench::runners::IperfCfg {
            window: ano_sim::time::SimDuration::from_millis(10),
            ..Default::default()
        })
    });
    g.bench("fig13_nginx_point", || {
        ano_bench::runners::run_rr(&ano_bench::runners::RrCfg {
            conns: 16,
            window: ano_sim::time::SimDuration::from_millis(10),
            ..Default::default()
        })
    });
    g.finish();
}

fn main() {
    let mut h = Harness::from_args();
    figure_points(&mut h);
}
