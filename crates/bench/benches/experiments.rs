//! Criterion wrappers around the figure experiments: one representative
//! point per paper figure, so `cargo bench` exercises every experiment
//! family (the `figures` binary regenerates the full sweeps).

use criterion::{criterion_group, criterion_main, Criterion};

use ano_bench::figures;

fn figure_points(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig02_overheads", |b| b.iter(figures::fig02));
    g.bench_function("tab01_accelerators", |b| b.iter(figures::tab01));
    g.bench_function("fig10_fio_point", |b| {
        b.iter(|| {
            ano_bench::runners::run_fio(&ano_bench::runners::FioCfg {
                size: 256 * 1024,
                depth: 16,
                offload: false,
                window: ano_sim::time::SimDuration::from_millis(10),
                seed: 1,
            })
        })
    });
    g.bench_function("fig11_iperf_point", |b| {
        b.iter(|| {
            ano_bench::runners::run_iperf(&ano_bench::runners::IperfCfg {
                window: ano_sim::time::SimDuration::from_millis(10),
                ..Default::default()
            })
        })
    });
    g.bench_function("fig13_nginx_point", |b| {
        b.iter(|| {
            ano_bench::runners::run_rr(&ano_bench::runners::RrCfg {
                conns: 16,
                window: ano_sim::time::SimDuration::from_millis(10),
                ..Default::default()
            })
        })
    });
    g.finish();
}

criterion_group!(benches, figure_points);
criterion_main!(benches);
