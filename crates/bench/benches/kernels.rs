//! Criterion benches for the real data-path kernels — the "on-CPU
//! acceleration" measurements that feed the cost-model calibration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ano_core::demo::{self, DemoFlow};
use ano_core::msg::DataRef;
use ano_core::rx::RxEngine;
use ano_crypto::aes::Aes;
use ano_crypto::chacha;
use ano_crypto::crc32c::crc32c;
use ano_crypto::gcm;
use ano_crypto::sha::{Digest, Sha256};
use ano_tls::record::HEADER_LEN;
use ano_tls::session::TlsSession;

fn crypto_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    for size in [1448usize, 16 * 1024] {
        let data = vec![0xA5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("aes128-gcm-seal", size), &size, |b, _| {
            let aes = Aes::new_128(&[7; 16]);
            b.iter(|| {
                let mut buf = data.clone();
                gcm::seal(&aes, &[1; 12], b"aad", &mut buf)
            });
        });
        g.bench_with_input(BenchmarkId::new("crc32c", size), &size, |b, _| {
            b.iter(|| crc32c(&data));
        });
        g.bench_with_input(BenchmarkId::new("sha256", size), &size, |b, _| {
            b.iter(|| Sha256::digest(&data));
        });
        g.bench_with_input(BenchmarkId::new("chacha20poly1305-seal", size), &size, |b, _| {
            b.iter(|| {
                let mut buf = data.clone();
                chacha::seal(&[9; 32], &[1; 12], b"aad", &mut buf)
            });
        });
    }
    g.finish();
}

fn record_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("tls-records");
    let session = TlsSession::from_seed(5);
    let plain = vec![0x42u8; 16 * 1024];
    g.throughput(Throughput::Bytes(plain.len() as u64));
    g.bench_function("seal-record-16k", |b| {
        b.iter(|| session.seal_record(0, &plain));
    });
    let wire = session.seal_record(0, &plain);
    g.bench_function("open-record-16k", |b| {
        b.iter(|| session.open_record(0, &wire).expect("auth"));
    });
    g.finish();
}

fn engine_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("offload-engine");
    // In-sequence walking of demo messages (the NIC fast path).
    let stream: Vec<u8> = (0..64)
        .flat_map(|i| demo::encode_msg(&vec![i as u8; 1000]))
        .collect();
    g.throughput(Throughput::Bytes(stream.len() as u64));
    g.bench_function("rx-walk-insequence", |b| {
        b.iter(|| {
            let mut e = RxEngine::new(Box::new(DemoFlow::rx_functional(demo::DEFAULT_KEY)), 0, 0);
            for (i, chunk) in stream.chunks(1448).enumerate() {
                let mut buf = chunk.to_vec();
                e.on_packet((i * 1448) as u64, &mut DataRef::Real(&mut buf));
            }
        });
    });
    // Speculative magic-pattern search over a packet that has no match
    // (worst case for the searching state).
    let noise = vec![0x11u8; 1448];
    g.throughput(Throughput::Bytes(noise.len() as u64));
    g.bench_function("rx-speculative-search", |b| {
        b.iter(|| {
            let mut e = RxEngine::new(Box::new(DemoFlow::rx_functional(demo::DEFAULT_KEY)), 0, 0);
            // A far-ahead packet forces search; scanning happens inline.
            let mut buf = noise.clone();
            e.on_packet(1 << 20, &mut DataRef::Real(&mut buf));
        });
    });
    // TLS header parse (the per-record control cost).
    let hdr = ano_tls::record::RecordHeader::for_plaintext(16 * 1024).encode();
    g.bench_function("tls-header-parse", |b| {
        b.iter(|| ano_tls::record::RecordHeader::parse(&hdr));
    });
    let _ = HEADER_LEN;
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = crypto_kernels, record_paths, engine_paths
}
criterion_main!(benches);
