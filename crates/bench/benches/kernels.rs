//! Micro-benches for the real data-path kernels — the "on-CPU
//! acceleration" measurements that feed the cost-model calibration.
//!
//! Runs under `cargo bench` via the hermetic harness in `ano_bench::micro`
//! (no criterion). Pass a substring argument to filter, e.g.
//! `cargo bench --bench kernels -- crc32c`.

use ano_bench::micro::Harness;

use ano_core::demo::{self, DemoFlow};
use ano_core::msg::DataRef;
use ano_core::rx::RxEngine;
use ano_crypto::aes::Aes;
use ano_crypto::chacha;
use ano_crypto::crc32c::crc32c;
use ano_crypto::gcm;
use ano_crypto::sha::{Digest, Sha256};
use ano_tls::record::HEADER_LEN;
use ano_tls::session::TlsSession;

fn crypto_kernels(h: &mut Harness) {
    let mut g = h.group("crypto");
    for size in [1448usize, 16 * 1024] {
        let data = vec![0xA5u8; size];
        g.throughput_bytes(size as u64);
        let aes = Aes::new_128(&[7; 16]);
        g.bench(&format!("aes128-gcm-seal/{size}"), || {
            let mut buf = data.clone();
            gcm::seal(&aes, &[1; 12], b"aad", &mut buf)
        });
        g.bench(&format!("crc32c/{size}"), || crc32c(&data));
        g.bench(&format!("sha256/{size}"), || Sha256::digest(&data));
        g.bench(&format!("chacha20poly1305-seal/{size}"), || {
            let mut buf = data.clone();
            chacha::seal(&[9; 32], &[1; 12], b"aad", &mut buf)
        });
    }
    g.finish();
}

fn record_paths(h: &mut Harness) {
    let mut g = h.group("tls-records");
    let session = TlsSession::from_seed(5);
    let plain = vec![0x42u8; 16 * 1024];
    g.throughput_bytes(plain.len() as u64);
    g.bench("seal-record-16k", || session.seal_record(0, &plain));
    let wire = session.seal_record(0, &plain);
    g.bench("open-record-16k", || {
        session.open_record(0, &wire).expect("auth")
    });
    g.finish();
}

fn engine_paths(h: &mut Harness) {
    let mut g = h.group("offload-engine");
    // In-sequence walking of demo messages (the NIC fast path).
    let stream: Vec<u8> = (0..64)
        .flat_map(|i| demo::encode_msg(&vec![i as u8; 1000]))
        .collect();
    g.throughput_bytes(stream.len() as u64);
    g.bench("rx-walk-insequence", || {
        let mut e = RxEngine::new(Box::new(DemoFlow::rx_functional(demo::DEFAULT_KEY)), 0, 0);
        for (i, chunk) in stream.chunks(1448).enumerate() {
            let mut buf = chunk.to_vec();
            e.on_packet((i * 1448) as u64, &mut DataRef::Real(&mut buf));
        }
    });
    // Speculative magic-pattern search over a packet that has no match
    // (worst case for the searching state).
    let noise = vec![0x11u8; 1448];
    g.throughput_bytes(noise.len() as u64);
    g.bench("rx-speculative-search", || {
        let mut e = RxEngine::new(Box::new(DemoFlow::rx_functional(demo::DEFAULT_KEY)), 0, 0);
        // A far-ahead packet forces search; scanning happens inline.
        let mut buf = noise.clone();
        e.on_packet(1 << 20, &mut DataRef::Real(&mut buf));
    });
    // TLS header parse (the per-record control cost).
    let hdr = ano_tls::record::RecordHeader::for_plaintext(16 * 1024).encode();
    g.bench("tls-header-parse", || ano_tls::record::RecordHeader::parse(&hdr));
    let _ = HEADER_LEN;
    g.finish();
}

fn main() {
    let mut h = Harness::from_args();
    crypto_kernels(&mut h);
    record_paths(&mut h);
    engine_paths(&mut h);
}
