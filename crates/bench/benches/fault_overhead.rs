//! Device-fault layer overhead on the hot path.
//!
//! The degradation machinery (install retry, circuit breaker, reset
//! recovery) exists for the unhappy path; the happy path must not pay for
//! it. Every install and resync-mailbox operation consults the host's
//! `DeviceFaults` plan via `on_op`, so the shipping configuration — an
//! empty plan — must cost a counter bump and an `is_empty` branch, nothing
//! more.
//!
//! Two views:
//!
//! * `fault/*` — the primitive `on_op` cost per call: empty plan (what
//!   every op pays in fault-free runs), a plan whose rules never match
//!   (the rule-scan miss), and a matching rule (the injection path —
//!   allowed to be slower, it only runs when chaos is on).
//! * `iperf/*` — the same short modeled streaming run with no fault plan
//!   vs an inert plan installed, plus a printed overhead percentage. Both
//!   are fault-free runs; the delta is the whole cost of carrying the
//!   fault layer.

use ano_bench::micro::{black_box, Harness};
use ano_bench::runners::{run_iperf, IperfCfg, Variant};
use ano_core::fault::{DeviceFaults, DeviceOp, FaultAction};
use ano_sim::link::Match;
use ano_sim::time::{SimDuration, SimTime};
use std::time::Instant;

/// A plan with rules that exist but can never fire (nth = far beyond any
/// realistic attempt count): measures the rule-scan miss, and doubles as
/// the whole-run "inert plan" below.
fn inert_plan() -> DeviceFaults {
    DeviceFaults::none()
        .with(DeviceOp::InstallRx, Match::Nth(1 << 40), FaultAction::Fail)
        .with(DeviceOp::ResyncResp, Match::Nth(1 << 40), FaultAction::Drop)
}

fn main() {
    let mut h = Harness::from_args();

    let mut g = h.group("fault");
    let mut empty = DeviceFaults::none();
    g.bench("on_op/empty-plan", || {
        black_box(empty.on_op(DeviceOp::InstallRx, SimTime::ZERO));
    });
    let mut inert = inert_plan();
    g.bench("on_op/rules-no-match", || {
        black_box(inert.on_op(DeviceOp::InstallRx, SimTime::ZERO));
    });
    let mut firing = DeviceFaults::none().with(
        DeviceOp::InstallRx,
        Match::Cycle { pattern: vec![true], until: u64::MAX },
        FaultAction::Fail,
    );
    g.bench("on_op/rule-match", || {
        black_box(firing.on_op(DeviceOp::InstallRx, SimTime::ZERO));
    });
    g.finish();

    // Whole-run comparison: a short iperf window with no fault plan vs an
    // inert plan installed on the receiver. The sim is deterministic, so
    // run-to-run wall-clock noise is the only variance; three repeats and
    // the median tame it.
    let cfg = IperfCfg {
        variant: Variant::TlsOffloadZc,
        warmup: SimDuration::from_millis(10),
        window: SimDuration::from_millis(30),
        ..Default::default()
    };
    let timed = |faults: DeviceFaults| -> f64 {
        let cfg = IperfCfg { faults, ..cfg.clone() };
        let mut runs: Vec<f64> = (0..3)
            .map(|_| {
                let t = Instant::now();
                black_box(run_iperf(&cfg));
                t.elapsed().as_secs_f64()
            })
            .collect();
        runs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        runs[1]
    };
    let base = timed(DeviceFaults::none());
    let carried = timed(inert_plan());
    println!("\n== iperf hot path ==");
    println!("  iperf/no-fault-plan                       {:>9.1} ms/run", base * 1e3);
    println!("  iperf/inert-fault-plan                    {:>9.1} ms/run", carried * 1e3);
    println!(
        "  fault-layer overhead: {:+.1}%  (empty-plan cost is the on_op/empty-plan \
         number above, per install/mailbox op)",
        100.0 * (carried - base) / base
    );
}
