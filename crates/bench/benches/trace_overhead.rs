//! Tracer overhead on the hot path.
//!
//! The tentpole claim: tracing is free when disabled. Every layer's inner
//! loop now carries `tracer.record(|| …)` / `tracer.count(…)` calls, so the
//! disabled path — one `Cell` load and a branch, closure never run — must
//! stay within a ≤2% budget on the iperf-style hot path.
//!
//! Two views:
//!
//! * `tracer/*` — the primitive cost per call, disabled vs enabled. The
//!   disabled numbers are what every packet pays; they should read in the
//!   ~1 ns range, i.e. noise against the thousands of ns a packet costs.
//! * `iperf/*` — the same short modeled streaming run with the world
//!   tracer off vs on, plus a printed overhead percentage. The "off" run
//!   is the shipping configuration; "on" shows the worst case with every
//!   per-packet event recorded into the ring.

use ano_bench::micro::{black_box, Harness};
use ano_bench::runners::{run_iperf, IperfCfg, Variant};
use ano_sim::time::SimDuration;
use ano_trace::{Event, RetransmitKind, Tracer};
use std::time::Instant;

fn main() {
    let mut h = Harness::from_args();

    let mut g = h.group("tracer");
    let off = Tracer::new(1024);
    g.bench("record/disabled", || {
        off.record(|| Event::PktOffloaded { seq: 0, len: 1448 });
    });
    g.bench("count/disabled", || off.count("rx.pkts", 1));
    let on = Tracer::new(1024);
    on.set_enabled(true);
    let mut seq = 0u64;
    g.bench("record/enabled", || {
        seq += 1448;
        on.record(|| Event::TcpRetransmit { seq, len: 1448, kind: RetransmitKind::Fast });
    });
    g.bench("count/enabled", || on.count("rx.pkts", 1));
    g.finish();

    // Whole-run comparison: a short iperf window, tracer off vs on. One
    // timed run each — the sim is deterministic, so run-to-run wall-clock
    // noise is the only variance; three repeats and the median tame it.
    let cfg = IperfCfg {
        variant: Variant::TlsOffloadZc,
        warmup: SimDuration::from_millis(10),
        window: SimDuration::from_millis(30),
        ..Default::default()
    };
    let timed = |trace: bool| -> f64 {
        let cfg = IperfCfg { trace, ..cfg.clone() };
        let mut runs: Vec<f64> = (0..3)
            .map(|_| {
                let t = Instant::now();
                black_box(run_iperf(&cfg));
                t.elapsed().as_secs_f64()
            })
            .collect();
        runs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        runs[1]
    };
    let base = timed(false);
    let traced = timed(true);
    println!("\n== iperf hot path ==");
    println!("  iperf/tracer-off                          {:>9.1} ms/run", base * 1e3);
    println!("  iperf/tracer-on                           {:>9.1} ms/run", traced * 1e3);
    println!(
        "  enabled-tracing overhead: {:+.1}%  (disabled-path cost is the record/disabled \
         number above, per event site)",
        100.0 * (traced - base) / base
    );
}
