//! Simulator-speed benchmark: the perf trajectory every PR defends.
//!
//! Measures three headline numbers and reads/writes `BENCH_baseline.json`
//! at the repo root (see EXPERIMENTS.md "Benchmark baselines"):
//!
//! * **iperf sim speed** — simulated application bytes delivered per second
//!   of *wall-clock* time on the default single-stream TLS-offload-zc iperf
//!   path (the ROADMAP item-2 headline metric), plus wall nanoseconds per
//!   simulated packet offered to the links;
//! * **event rate** — scheduler events dispatched per wall second on the
//!   same run;
//! * **kernel cycles-per-byte** — wall-clock throughput of the real crypto
//!   kernels (CRC32C, AES-128-GCM seal, SHA-256) over 16 KiB buffers,
//!   expressed as cycles/byte at a documented nominal [`NOMINAL_HZ`] clock
//!   so numbers stay comparable across runs on the same machine.
//!
//! Usage:
//!
//! ```text
//! bench                     # run, print the JSON document to stdout
//! bench --write PATH        # run, write the JSON document to PATH
//! bench --check PATH        # run, compare against PATH, exit 1 on
//!                           #   >MAX_REGRESS_PCT ns/packet regression
//! bench --pre-pr X          # record X as the pre-PR iperf sim speed
//!                           #   (carried through from the committed file)
//! ```
//!
//! `scripts/bench.sh` wraps this: it checks against the committed baseline
//! and regenerates it under `BLESS=1`.

#![forbid(unsafe_code)]

use std::time::Instant;

use ano_bench::runners::{dc_tcp, Variant};
use ano_core::nic::NicConfig;
use ano_crypto::aes::Aes;
use ano_crypto::crc32c::crc32c;
use ano_crypto::gcm;
use ano_crypto::sha::{Digest, Sha256};
use ano_sim::payload::DataMode;
use ano_sim::time::{SimDuration, SimTime};
use ano_stack::prelude::*;

/// Nominal clock used to express measured wall ns/byte as cycles/byte.
/// This is a *unit convention*, not a claim about the host: regressions are
/// judged as ratios against the committed baseline from the same machine.
const NOMINAL_HZ: f64 = 3.0e9;

/// Regression gate: `--check` fails when the measured wall ns per simulated
/// packet exceeds the committed baseline by more than this percentage.
const MAX_REGRESS_PCT: f64 = 15.0;

/// Simulated warm-up before the measured window.
const WARMUP: SimDuration = SimDuration::from_millis(60);
/// Simulated window the wall clock is measured over.
const WINDOW: SimDuration = SimDuration::from_millis(200);
/// Timed repetitions; the fastest run is reported (noise floors, not means).
const REPS: usize = 3;

struct IperfSpeed {
    /// Simulated application bytes delivered per wall second.
    sim_bytes_per_wall_sec: f64,
    /// Wall nanoseconds per packet offered to the links (data + acks).
    ns_per_packet: f64,
    /// Scheduler events dispatched per wall second.
    events_per_wall_sec: f64,
    /// Goodput of the simulated run itself (sanity anchor, Gbit/s).
    sim_gbps: f64,
}

/// One timed iperf run: default single-stream TLS-offload-zc configuration
/// (the ROADMAP item-2 headline path), fixed seed, tracing off.
fn iperf_once() -> IperfSpeed {
    let mut w = World::new(WorldConfig {
        seed: 42,
        mode: DataMode::Modeled,
        cores: [1, 8],
        tcp: dc_tcp(),
        ..Default::default()
    });
    let conn = w.connect(Variant::TlsOffloadZc.spec(), Variant::TlsOffloadZc.spec());
    let sender = ano_apps::iperf::IperfSender::new(vec![conn], 256 * 1024, DataMode::Modeled);
    let sink = ano_apps::iperf::IperfSink::new();
    w.set_app(0, Box::new(sender));
    w.set_app(1, Box::new(sink));
    w.start();
    w.run_until(SimTime::ZERO + WARMUP);

    let t0 = w.now();
    let bytes0 = w.delivered_bytes(1, conn);
    let pkts0 = w.link_stats(true).offered + w.link_stats(false).offered;
    let events0 = w.events_dispatched();
    let wall = Instant::now();
    w.run_until(t0 + WINDOW);
    let wall_ns = wall.elapsed().as_nanos() as f64;
    let sim_elapsed = w.now().since(t0);
    let bytes = (w.delivered_bytes(1, conn) - bytes0) as f64;
    let pkts = (w.link_stats(true).offered + w.link_stats(false).offered - pkts0) as f64;
    let events = (w.events_dispatched() - events0) as f64;

    IperfSpeed {
        sim_bytes_per_wall_sec: bytes / (wall_ns / 1e9),
        ns_per_packet: wall_ns / pkts.max(1.0),
        events_per_wall_sec: events / (wall_ns / 1e9),
        sim_gbps: bytes * 8.0 / sim_elapsed.as_secs_f64() / 1e9,
    }
}

struct FleetSpeed {
    /// Simulated application bytes delivered per wall second, summed over
    /// every flow in the fleet.
    sim_bytes_per_wall_sec: f64,
    /// Wall nanoseconds per packet offered to any link in the mesh.
    ns_per_packet: f64,
}

/// Fleet shape for the timed run: enough hosts and flows that the per-host
/// scheduler, the link mesh, and the server context caches all carry real
/// load, while the 32-entry caches stay oversubscribed (64 rx flows over
/// 2 x 32 entries) so the eviction path is on the clock too.
const FLEET_CLIENTS: usize = 4;
const FLEET_SERVERS: usize = 2;
const FLEET_FLOWS: usize = 64;

/// One timed fleet run: N×M hosts, 64 concurrent TLS flows rx-offloaded at
/// the servers, modeled payloads, fixed seed, tracing off. This is the
/// many-host counterpart of [`iperf_once`]: it prices the topology
/// scheduler and the context-cache path rather than a single stream.
fn fleet_once() -> FleetSpeed {
    let mut fleet = Fleet::build(FleetSpec {
        clients: FLEET_CLIENTS,
        servers: FLEET_SERVERS,
        client: HostSpec {
            cores: 4,
            ..HostSpec::default()
        },
        server: HostSpec {
            cores: 8,
            nic: NicConfig {
                ctx_cache_capacity: 32,
                ..NicConfig::default()
            },
        },
        impair: Vec::new(),
        scripts: Vec::new(),
        cfg: WorldConfig {
            seed: 42,
            mode: DataMode::Modeled,
            tcp: dc_tcp(),
            ..Default::default()
        },
    });

    let mut per_client: Vec<Vec<ConnId>> = vec![Vec::new(); FLEET_CLIENTS];
    let mut conns = Vec::with_capacity(FLEET_FLOWS);
    for k in 0..FLEET_FLOWS {
        let (ci, sj) = (k % FLEET_CLIENTS, k % FLEET_SERVERS);
        let conn = fleet.connect(
            ci,
            sj,
            ConnSpec::Tls(TlsSpec::default()),
            ConnSpec::Tls(TlsSpec {
                rx_offload: true,
                ..TlsSpec::default()
            }),
        );
        per_client[ci].push(conn);
        conns.push((conn, fleet.server(sj)));
    }
    for (ci, list) in per_client.into_iter().enumerate() {
        let sender = ano_apps::iperf::IperfSender::new(list, 256 * 1024, DataMode::Modeled);
        fleet.set_app(ci, Box::new(sender));
    }
    for sj in 0..FLEET_SERVERS {
        let server = fleet.server(sj);
        fleet.set_app(server, Box::new(ano_apps::iperf::IperfSink::new()));
    }
    fleet.start();
    fleet.run_until(SimTime::ZERO + WARMUP);

    let mesh_pkts = |f: &Fleet| -> u64 {
        let mut total = 0;
        for ci in 0..FLEET_CLIENTS as u16 {
            for sj in 0..FLEET_SERVERS {
                let s = (FLEET_CLIENTS + sj) as u16;
                total += f.link_stats_between(ci, s).offered;
                total += f.link_stats_between(s, ci).offered;
            }
        }
        total
    };
    let delivered = |f: &Fleet| -> u64 {
        conns
            .iter()
            .map(|&(conn, server)| f.delivered_bytes(server, conn))
            .sum()
    };

    let t0 = fleet.now();
    let bytes0 = delivered(&fleet);
    let pkts0 = mesh_pkts(&fleet);
    let wall = Instant::now();
    fleet.run_until(t0 + WINDOW);
    let wall_ns = wall.elapsed().as_nanos() as f64;
    let bytes = (delivered(&fleet) - bytes0) as f64;
    let pkts = (mesh_pkts(&fleet) - pkts0) as f64;

    FleetSpeed {
        sim_bytes_per_wall_sec: bytes / (wall_ns / 1e9),
        ns_per_packet: wall_ns / pkts.max(1.0),
    }
}

struct RssSpeed {
    /// Simulated application bytes delivered per wall second, summed over
    /// every flow through the multi-queue server.
    sim_bytes_per_wall_sec: f64,
    /// Wall nanoseconds per packet offered to any link.
    ns_per_packet: f64,
    /// Max-over-mean packet load across the server's rx queues.
    queue_imbalance: f64,
    /// Max-over-mean busy cycles across the server's cores over the
    /// measured window (1.0 = perfectly even, cores = single-core pileup).
    busy_core_spread: f64,
}

/// Multi-queue shape for the timed run: one 4-core/4-queue server fed by
/// 32 RSS-hashed TLS flows, with the default rebalancer armed — the tile
/// prices the steering path (per-packet queue accounting, per-core stacks)
/// and reports how evenly hash placement spreads the load.
const RSS_CLIENTS: usize = 4;
const RSS_FLOWS: usize = 32;
const RSS_QUEUES: u16 = 4;
const RSS_CORES: usize = 4;

/// One timed RSS run: the multi-queue counterpart of [`fleet_once`].
fn rss_once() -> RssSpeed {
    let mut fleet = Fleet::build(FleetSpec {
        clients: RSS_CLIENTS,
        servers: 1,
        client: HostSpec {
            cores: 4,
            ..HostSpec::default()
        },
        server: HostSpec {
            cores: RSS_CORES,
            nic: NicConfig {
                rx_queues: RSS_QUEUES,
                rss_buckets: 128,
                ..NicConfig::default()
            },
        },
        impair: Vec::new(),
        scripts: Vec::new(),
        cfg: WorldConfig {
            seed: 42,
            mode: DataMode::Modeled,
            tcp: dc_tcp(),
            rebalance: Some(RebalanceConfig::default()),
            ..Default::default()
        },
    });

    let server = fleet.server(0);
    let mut per_client: Vec<Vec<ConnId>> = vec![Vec::new(); RSS_CLIENTS];
    let mut conns = Vec::with_capacity(RSS_FLOWS);
    for k in 0..RSS_FLOWS {
        let ci = k % RSS_CLIENTS;
        let conn = fleet.connect(
            ci,
            0,
            ConnSpec::Tls(TlsSpec::default()),
            ConnSpec::Tls(TlsSpec {
                rx_offload: true,
                ..TlsSpec::default()
            }),
        );
        per_client[ci].push(conn);
        conns.push(conn);
    }
    for (ci, list) in per_client.into_iter().enumerate() {
        let sender = ano_apps::iperf::IperfSender::new(list, 256 * 1024, DataMode::Modeled);
        fleet.set_app(ci, Box::new(sender));
    }
    fleet.set_app(server, Box::new(ano_apps::iperf::IperfSink::new()));
    fleet.start();
    fleet.run_until(SimTime::ZERO + WARMUP);

    let mesh_pkts = |f: &Fleet| -> u64 {
        let mut total = 0;
        for ci in 0..RSS_CLIENTS as u16 {
            let s = RSS_CLIENTS as u16;
            total += f.link_stats_between(ci, s).offered;
            total += f.link_stats_between(s, ci).offered;
        }
        total
    };
    let delivered =
        |f: &Fleet| -> u64 { conns.iter().map(|&conn| f.delivered_bytes(server, conn)).sum() };

    let t0 = fleet.now();
    let bytes0 = delivered(&fleet);
    let pkts0 = mesh_pkts(&fleet);
    let cpu0 = fleet.cpu_snapshot(server);
    let wall = Instant::now();
    fleet.run_until(t0 + WINDOW);
    let wall_ns = wall.elapsed().as_nanos() as f64;
    let bytes = (delivered(&fleet) - bytes0) as f64;
    let pkts = (mesh_pkts(&fleet) - pkts0) as f64;

    let cpu1 = fleet.cpu_snapshot(server);
    let deltas: Vec<u64> = cpu1
        .iter()
        .zip(&cpu0)
        .map(|(a, b)| a.saturating_sub(*b))
        .collect();
    let total: u64 = deltas.iter().sum();
    let max = deltas.iter().copied().max().unwrap_or(0);
    let busy_core_spread = if total == 0 || deltas.len() <= 1 {
        1.0
    } else {
        max as f64 * deltas.len() as f64 / total as f64
    };

    RssSpeed {
        sim_bytes_per_wall_sec: bytes / (wall_ns / 1e9),
        ns_per_packet: wall_ns / pkts.max(1.0),
        queue_imbalance: fleet.queue_imbalance(server),
        busy_core_spread,
    }
}

fn rss_speed() -> RssSpeed {
    let mut best: Option<RssSpeed> = None;
    for _ in 0..REPS {
        let r = rss_once();
        let better = best
            .as_ref()
            .is_none_or(|b| r.sim_bytes_per_wall_sec > b.sim_bytes_per_wall_sec);
        if better {
            best = Some(r);
        }
    }
    best.expect("REPS > 0")
}

fn fleet_speed() -> FleetSpeed {
    let mut best: Option<FleetSpeed> = None;
    for _ in 0..REPS {
        let r = fleet_once();
        let better = best
            .as_ref()
            .is_none_or(|b| r.sim_bytes_per_wall_sec > b.sim_bytes_per_wall_sec);
        if better {
            best = Some(r);
        }
    }
    best.expect("REPS > 0")
}

fn iperf_speed() -> IperfSpeed {
    let mut best: Option<IperfSpeed> = None;
    for _ in 0..REPS {
        let r = iperf_once();
        let better = best
            .as_ref()
            .is_none_or(|b| r.sim_bytes_per_wall_sec > b.sim_bytes_per_wall_sec);
        if better {
            best = Some(r);
        }
    }
    best.expect("REPS > 0")
}

/// Measures one kernel's wall ns/byte over `data`, reported as cycles/byte
/// at [`NOMINAL_HZ`].
fn kernel_cpb<R>(data_len: usize, mut f: impl FnMut() -> R) -> f64 {
    // Calibrate a batch that runs ~20 ms, then time the fastest of 5.
    let mut batch = 1u32;
    loop {
        let t = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        if t.elapsed().as_millis() >= 20 || batch >= 1 << 20 {
            break;
        }
        batch *= 4;
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        let per_byte = t.elapsed().as_nanos() as f64 / batch as f64 / data_len as f64;
        best = best.min(per_byte);
    }
    best * NOMINAL_HZ / 1e9
}

struct Kernels {
    crc32c_cpb: f64,
    aes_gcm_seal_cpb: f64,
    sha256_cpb: f64,
}

fn kernels() -> Kernels {
    let data = vec![0xA5u8; 16 * 1024];
    let aes = Aes::new_128(&[7; 16]);
    Kernels {
        crc32c_cpb: kernel_cpb(data.len(), || crc32c(&data)),
        aes_gcm_seal_cpb: kernel_cpb(data.len(), || {
            let mut buf = data.clone();
            gcm::seal(&aes, &[1; 12], b"aad", &mut buf)
        }),
        sha256_cpb: kernel_cpb(data.len(), || Sha256::digest(&data)),
    }
}

/// Renders the benchmark document. Hand-rolled JSON (hermetic workspace:
/// no serde); fixed key order so diffs stay readable.
fn render(
    iperf: &IperfSpeed,
    fleet: &FleetSpeed,
    rss: &RssSpeed,
    k: &Kernels,
    pre_pr: f64,
) -> String {
    let speedup = if pre_pr > 0.0 {
        iperf.sim_bytes_per_wall_sec / pre_pr
    } else {
        0.0
    };
    format!(
        "{{\n  \"schema\": 1,\n  \"nominal_hz\": {NOMINAL_HZ:.0},\n  \"iperf\": {{\n    \
         \"sim_bytes_per_wall_sec\": {:.0},\n    \"ns_per_packet\": {:.1},\n    \
         \"events_per_wall_sec\": {:.0},\n    \"sim_gbps\": {:.2}\n  }},\n  \
         \"fleet\": {{\n    \"sim_bytes_per_wall_sec\": {:.0},\n    \
         \"ns_per_packet\": {:.1}\n  }},\n  \
         \"rss\": {{\n    \"sim_bytes_per_wall_sec\": {:.0},\n    \
         \"ns_per_packet\": {:.1},\n    \"queue_imbalance\": {:.3},\n    \
         \"busy_core_spread\": {:.3}\n  }},\n  \
         \"pre_pr\": {{\n    \"sim_bytes_per_wall_sec\": {pre_pr:.0},\n    \
         \"speedup\": {speedup:.2}\n  }},\n  \"kernels\": {{\n    \
         \"crc32c_cpb\": {:.3},\n    \"aes_gcm_seal_cpb\": {:.3},\n    \
         \"sha256_cpb\": {:.3}\n  }}\n}}\n",
        iperf.sim_bytes_per_wall_sec,
        iperf.ns_per_packet,
        iperf.events_per_wall_sec,
        iperf.sim_gbps,
        fleet.sim_bytes_per_wall_sec,
        fleet.ns_per_packet,
        rss.sim_bytes_per_wall_sec,
        rss.ns_per_packet,
        rss.queue_imbalance,
        rss.busy_core_spread,
        k.crc32c_cpb,
        k.aes_gcm_seal_cpb,
        k.sha256_cpb,
    )
}

/// Extracts `"key": <number>` from a JSON document written by [`render`].
/// Good enough for our own fixed format; not a general JSON parser.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = doc.find(&pat)? + pat.len();
    let rest = doc.get(at..)?;
    let num: String = rest
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
        .collect();
    num.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_val = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let write_path = flag_val("--write");
    let check_path = flag_val("--check");

    // The pre-PR anchor rides along: given explicitly for a fresh baseline,
    // otherwise carried forward from the file being checked/rewritten.
    let carried = check_path
        .as_deref()
        .or(write_path.as_deref())
        .and_then(|p| std::fs::read_to_string(p).ok())
        .and_then(|doc| json_number(&doc, "sim_bytes_per_wall_sec_pre"))
        .unwrap_or(0.0);
    let pre_pr = flag_val("--pre-pr")
        .and_then(|s| s.parse().ok())
        .or_else(|| {
            check_path
                .as_deref()
                .or(write_path.as_deref())
                .and_then(|p| std::fs::read_to_string(p).ok())
                .and_then(|doc| {
                    // `pre_pr` object holds its own sim_bytes_per_wall_sec;
                    // scope the lookup to that object.
                    let tail = doc.split("\"pre_pr\"").nth(1)?.to_string();
                    json_number(&tail, "sim_bytes_per_wall_sec")
                })
        })
        .unwrap_or(carried);

    eprintln!("measuring iperf sim speed ({REPS} x {}ms sim window)...", WINDOW.as_nanos() / 1_000_000);
    let iperf = iperf_speed();
    eprintln!(
        "  sim {:.1} MB/wall-s | {:.0} ns/pkt | {:.2} sim-Gbps | {:.0} ev/wall-s",
        iperf.sim_bytes_per_wall_sec / 1e6,
        iperf.ns_per_packet,
        iperf.sim_gbps,
        iperf.events_per_wall_sec,
    );
    eprintln!(
        "measuring fleet sim speed ({FLEET_CLIENTS}x{FLEET_SERVERS} hosts, {FLEET_FLOWS} flows, \
         {REPS} x {}ms sim window)...",
        WINDOW.as_nanos() / 1_000_000
    );
    let fleet = fleet_speed();
    eprintln!(
        "  sim {:.1} MB/wall-s | {:.0} ns/pkt",
        fleet.sim_bytes_per_wall_sec / 1e6,
        fleet.ns_per_packet,
    );
    eprintln!(
        "measuring rss sim speed ({RSS_CLIENTS}x1 hosts, {RSS_FLOWS} flows over {RSS_QUEUES} \
         queues/{RSS_CORES} cores, {REPS} x {}ms sim window)...",
        WINDOW.as_nanos() / 1_000_000
    );
    let rss = rss_speed();
    eprintln!(
        "  sim {:.1} MB/wall-s | {:.0} ns/pkt | imbalance {:.2} | core spread {:.2}",
        rss.sim_bytes_per_wall_sec / 1e6,
        rss.ns_per_packet,
        rss.queue_imbalance,
        rss.busy_core_spread,
    );
    eprintln!("measuring kernels...");
    let k = kernels();
    eprintln!(
        "  crc32c {:.3} cpb | aes-gcm-seal {:.3} cpb | sha256 {:.3} cpb (at {:.1} GHz nominal)",
        k.crc32c_cpb,
        k.aes_gcm_seal_cpb,
        k.sha256_cpb,
        NOMINAL_HZ / 1e9
    );

    let doc = render(&iperf, &fleet, &rss, &k, pre_pr);
    if let Some(path) = &check_path {
        let committed = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("bench: cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        let base_ns = json_number(&committed, "ns_per_packet").unwrap_or(0.0);
        if base_ns <= 0.0 {
            eprintln!("bench: baseline {path} has no ns_per_packet");
            std::process::exit(2);
        }
        let regress_pct = 100.0 * (iperf.ns_per_packet - base_ns) / base_ns;
        eprintln!(
            "check: ns/packet {:.1} vs baseline {base_ns:.1} ({regress_pct:+.1}%)",
            iperf.ns_per_packet
        );
        if regress_pct > MAX_REGRESS_PCT {
            eprintln!(
                "bench: REGRESSION: ns/packet worsened {regress_pct:.1}% (> {MAX_REGRESS_PCT}% gate). \
                 If intentional, regenerate with BLESS=1 scripts/bench.sh and commit the diff."
            );
            std::process::exit(1);
        }
        // Fleet gate: same ratio test, scoped to the baseline's "fleet"
        // object. Baselines written before the fleet entry existed simply
        // skip this gate; a BLESS adds the entry and arms it.
        let fleet_base = committed
            .split("\"fleet\"")
            .nth(1)
            .and_then(|tail| json_number(tail, "ns_per_packet"))
            .unwrap_or(0.0);
        if fleet_base > 0.0 {
            let fleet_pct = 100.0 * (fleet.ns_per_packet - fleet_base) / fleet_base;
            eprintln!(
                "check: fleet ns/packet {:.1} vs baseline {fleet_base:.1} ({fleet_pct:+.1}%)",
                fleet.ns_per_packet
            );
            if fleet_pct > MAX_REGRESS_PCT {
                eprintln!(
                    "bench: REGRESSION: fleet ns/packet worsened {fleet_pct:.1}% \
                     (> {MAX_REGRESS_PCT}% gate). If intentional, regenerate with \
                     BLESS=1 scripts/bench.sh and commit the diff."
                );
                std::process::exit(1);
            }
        } else {
            eprintln!("check: baseline {path} has no fleet entry (pre-fleet baseline); skipping fleet gate");
        }
        // RSS gate: same ratio test on the "rss" object; pre-RSS baselines
        // skip it until a BLESS adds the entry.
        let rss_base = committed
            .split("\"rss\"")
            .nth(1)
            .and_then(|tail| json_number(tail, "ns_per_packet"))
            .unwrap_or(0.0);
        if rss_base > 0.0 {
            let rss_pct = 100.0 * (rss.ns_per_packet - rss_base) / rss_base;
            eprintln!(
                "check: rss ns/packet {:.1} vs baseline {rss_base:.1} ({rss_pct:+.1}%)",
                rss.ns_per_packet
            );
            if rss_pct > MAX_REGRESS_PCT {
                eprintln!(
                    "bench: REGRESSION: rss ns/packet worsened {rss_pct:.1}% \
                     (> {MAX_REGRESS_PCT}% gate). If intentional, regenerate with \
                     BLESS=1 scripts/bench.sh and commit the diff."
                );
                std::process::exit(1);
            }
        } else {
            eprintln!("check: baseline {path} has no rss entry (pre-rss baseline); skipping rss gate");
        }
        println!("{doc}");
    } else if let Some(path) = &write_path {
        if let Err(e) = std::fs::write(path, &doc) {
            eprintln!("bench: cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote {path}");
    } else {
        println!("{doc}");
    }
}
