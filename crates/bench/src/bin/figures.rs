//! Regenerates the paper's tables and figures.
//!
//! Usage: `figures [--quick] [ids...]` where ids are e.g. `fig11 fig16`
//! (plus `ablate` for the DESIGN.md §6 ablations); with no ids, every
//! paper figure runs in order (ablations run only when asked).

#![forbid(unsafe_code)]

use ano_bench::figures as f;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    let all = ids.is_empty();
    let want = |id: &str| all || ids.contains(&id);

    let t0 = std::time::Instant::now();
    if want("fig02") { print!("{}", f::fig02()); }
    if want("tab01") { print!("{}", f::tab01()); }
    if want("fig03") { print!("{}", f::fig03()); }
    if want("fig04") { print!("{}", f::fig04()); }
    if want("fig10") { print!("{}", f::fig10(quick)); }
    if want("fig11") { print!("{}", f::fig11(quick)); }
    if want("fig12") { print!("{}", f::fig12(quick)); }
    if want("fig13") { print!("{}", f::fig13(quick)); }
    if want("fig14") { print!("{}", f::fig14(quick)); }
    if want("fig15") { print!("{}", f::fig15(quick)); }
    if want("tab04") { print!("{}", f::tab04(quick)); }
    if want("fig16") { print!("{}", f::fig16(quick)); }
    if want("fig17") { print!("{}", f::fig17(quick)); }
    if want("fig18") { print!("{}", f::fig18(quick)); }
    if want("fig19") { print!("{}", f::fig19(quick)); }
    if want("ablate") { print!("{}", f::ablations(quick)); }
    eprintln!("\n[done in {:.1}s]", t0.elapsed().as_secs_f64());
}
