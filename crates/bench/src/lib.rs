//! Benchmark harnesses for the *Autonomous NIC Offloads* reproduction.
//!
//! * [`runners`] — reusable experiment engines over `ano-stack` worlds;
//! * [`figures`] — one function per paper table/figure, printing the same
//!   rows/series the paper reports (driven by the `figures` binary);
//! * [`data`] — embedded datasets behind the motivation figures.
//!
//! Criterion benches for the real data-path kernels live in `benches/`.

pub mod data;
pub mod figures;
pub mod runners;
