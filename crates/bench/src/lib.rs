//! Benchmark harnesses for the *Autonomous NIC Offloads* reproduction.
//!
//! * [`runners`] — reusable experiment engines over `ano-stack` worlds;
//! * [`figures`] — one function per paper table/figure, printing the same
//!   rows/series the paper reports (driven by the `figures` binary);
//! * [`data`] — embedded datasets behind the motivation figures;
//! * [`micro`] — the in-repo micro-benchmark harness (hermetic criterion
//!   stand-in) driving the `[[bench]]` targets in `benches/`.

#![forbid(unsafe_code)]

pub mod data;
pub mod figures;
pub mod micro;
pub mod runners;
