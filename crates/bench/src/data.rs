//! Embedded datasets behind the paper's motivation figures.
//!
//! Fig. 3 counts lines of code in the Linux TCP/IP stack per year and
//! Fig. 4 lists Mellanox NIC prices; both are *data* figures (no system to
//! run). We reproduce them from the values the paper reports/plots so the
//! harness can regenerate every figure. Sources: paper Fig. 3 (kernel LoC,
//! approximate read-off), Fig. 4 + Table 2 (March-2020 pricing list).

/// One year of Linux TCP/IP stack code size (Fig. 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LocYear {
    /// Calendar year.
    pub year: u32,
    /// Lines modified during the year (all components).
    pub modified: u32,
    /// Total lines at year end (all components).
    pub total: u32,
}

/// Fig. 3's series: the stack churns 5–25% of its lines every year while
/// growing steadily — the maintenance burden argument against TOEs.
pub const LINUX_TCPIP_LOC: [LocYear; 10] = [
    LocYear { year: 2010, modified: 35_000, total: 255_000 },
    LocYear { year: 2011, modified: 42_000, total: 262_000 },
    LocYear { year: 2012, modified: 48_000, total: 271_000 },
    LocYear { year: 2013, modified: 55_000, total: 282_000 },
    LocYear { year: 2014, modified: 60_000, total: 295_000 },
    LocYear { year: 2015, modified: 58_000, total: 309_000 },
    LocYear { year: 2016, modified: 67_000, total: 324_000 },
    LocYear { year: 2017, modified: 75_000, total: 341_000 },
    LocYear { year: 2018, modified: 83_000, total: 360_000 },
    LocYear { year: 2019, modified: 90_000, total: 380_000 },
];

/// One NIC price point (Fig. 4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NicPrice {
    /// ConnectX generation (3–6).
    pub generation: u8,
    /// Port speed in Gbps.
    pub speed_gbps: u32,
    /// Number of ports.
    pub ports: u8,
    /// USD price from the March-2020 list.
    pub usd: f64,
}

/// Fig. 4's points: price tracks speed × ports, *not* generation — newer
/// generations add offloads (Table 2) at the same price, so "clients get
/// ASIC NIC offloads essentially for free" (§2.5).
pub const CONNECTX_PRICES: [NicPrice; 16] = [
    NicPrice { generation: 3, speed_gbps: 10, ports: 1, usd: 190.0 },
    NicPrice { generation: 3, speed_gbps: 10, ports: 2, usd: 260.0 },
    NicPrice { generation: 4, speed_gbps: 10, ports: 1, usd: 185.0 },
    NicPrice { generation: 4, speed_gbps: 10, ports: 2, usd: 255.0 },
    NicPrice { generation: 4, speed_gbps: 25, ports: 1, usd: 245.0 },
    NicPrice { generation: 4, speed_gbps: 25, ports: 2, usd: 325.0 },
    NicPrice { generation: 5, speed_gbps: 25, ports: 1, usd: 250.0 },
    NicPrice { generation: 5, speed_gbps: 25, ports: 2, usd: 330.0 },
    NicPrice { generation: 3, speed_gbps: 40, ports: 1, usd: 390.0 },
    NicPrice { generation: 4, speed_gbps: 40, ports: 2, usd: 505.0 },
    NicPrice { generation: 4, speed_gbps: 50, ports: 1, usd: 430.0 },
    NicPrice { generation: 5, speed_gbps: 50, ports: 2, usd: 570.0 },
    NicPrice { generation: 4, speed_gbps: 100, ports: 1, usd: 710.0 },
    NicPrice { generation: 5, speed_gbps: 100, ports: 1, usd: 720.0 },
    NicPrice { generation: 5, speed_gbps: 100, ports: 2, usd: 860.0 },
    NicPrice { generation: 6, speed_gbps: 100, ports: 2, usd: 875.0 },
];

/// Offload capabilities introduced per ConnectX generation (Table 2).
pub const GENERATION_OFFLOADS: [(u8, u16, &str); 4] = [
    (3, 2011, "stateless checksum, LSO for TCP over VXLAN/NVGRE"),
    (4, 2014, "LRO, RSS, VLAN insert/strip, ARFS, ODP, T10-DIF"),
    (5, 2016, "header rewrite, adaptive routing, NVMe-oF, host chaining, MPI tag matching, USO"),
    (6, 2019, "block-level AES-XTS; Dx: autonomous TLS offload (this paper)"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_churn_is_5_to_25_percent() {
        for y in LINUX_TCPIP_LOC {
            let churn = y.modified as f64 / y.total as f64;
            assert!(
                (0.05..=0.25).contains(&churn),
                "{}: churn {churn:.2}",
                y.year
            );
        }
    }

    #[test]
    fn loc_totals_grow_monotonically() {
        for w in LINUX_TCPIP_LOC.windows(2) {
            assert!(w[1].total > w[0].total);
        }
    }

    /// §2.5's claim: same (speed, ports) across generations → similar price
    /// (within ~10%), despite added offloads.
    #[test]
    fn price_tracks_speed_not_generation() {
        for a in CONNECTX_PRICES {
            for b in CONNECTX_PRICES {
                if a.speed_gbps == b.speed_gbps && a.ports == b.ports {
                    let ratio = a.usd / b.usd;
                    assert!(
                        (0.9..=1.12).contains(&ratio),
                        "{a:?} vs {b:?}: ratio {ratio:.2}"
                    );
                }
            }
        }
    }

    #[test]
    fn price_increases_with_capability() {
        // More speed or more ports costs more, within a generation.
        let p = |g: u8, s: u32, n: u8| {
            CONNECTX_PRICES
                .iter()
                .find(|x| x.generation == g && x.speed_gbps == s && x.ports == n)
                .map(|x| x.usd)
        };
        assert!(p(4, 25, 1).unwrap() > p(4, 10, 1).unwrap());
        assert!(p(4, 25, 2).unwrap() > p(4, 25, 1).unwrap());
        assert!(p(5, 100, 1).unwrap() > p(5, 50, 2).unwrap());
    }
}
