//! Minimal micro-benchmark harness — the hermetic criterion stand-in.
//!
//! `cargo bench` runs each `[[bench]]` target (declared `harness = false`)
//! as a plain binary; this module supplies the timing loop those binaries
//! share. Per benchmark it calibrates an iteration batch from a warm-up
//! phase, collects wall-clock samples, and prints median/min/max ns per
//! iteration plus derived throughput when a byte count is attached.
//!
//! Design goals, in order: zero dependencies, stable output for eyeballing
//! regressions between runs, and short wall-clock time so `cargo bench`
//! stays usable as a smoke test over every figure family.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier — re-export so benches need no direct `std::hint`
/// import (criterion's `black_box` idiom).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level harness for one bench binary. Applies an optional substring
/// filter taken from the command line (flags like `--bench` that cargo
/// forwards are ignored).
pub struct Harness {
    filter: Option<String>,
}

impl Harness {
    /// Builds a harness from `std::env::args`.
    pub fn from_args() -> Harness {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Harness { filter }
    }

    /// Starts a named benchmark group.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        println!("\n== {name} ==");
        Group {
            harness: self,
            group: name.to_string(),
            throughput_bytes: None,
            samples: 20,
            target_sample: Duration::from_millis(10),
        }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct Group<'h> {
    harness: &'h Harness,
    group: String,
    throughput_bytes: Option<u64>,
    samples: usize,
    target_sample: Duration,
}

impl Group<'_> {
    /// Attaches a per-iteration byte count; subsequent benches also report
    /// GiB/s.
    pub fn throughput_bytes(&mut self, bytes: u64) -> &mut Self {
        self.throughput_bytes = Some(bytes);
        self
    }

    /// Number of timed samples per bench (default 20).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(3);
        self
    }

    /// Runs one benchmark. The closure is one iteration; its return value
    /// is passed through a black box so the work cannot be optimized away.
    pub fn bench<R, F: FnMut() -> R>(&mut self, id: &str, mut f: F) {
        let full = format!("{}/{id}", self.group);
        if let Some(filter) = &self.harness.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }

        // Warm-up & calibration: find how many iterations fill the target
        // sample duration.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.target_sample || batch >= 1 << 24 {
                break;
            }
            // Grow toward the target, at least doubling.
            batch = (batch * 2).max(if elapsed.is_zero() {
                batch * 16
            } else {
                (batch as u128 * self.target_sample.as_nanos() / elapsed.as_nanos().max(1)) as u64
            });
        }

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = per_iter[per_iter.len() / 2];
        let (min, max) = (per_iter[0], per_iter[per_iter.len() - 1]);

        let mut line = format!(
            "  {full:<40} {:>12}/iter  [{} .. {}]  x{batch}",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max),
        );
        if let Some(bytes) = self.throughput_bytes {
            let gibs = bytes as f64 / median / 1.073_741_824;
            line.push_str(&format!("  {gibs:>8.3} GiB/s"));
        }
        println!("{line}");
    }

    /// Ends the group (symmetry with criterion; prints nothing extra).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_prints() {
        let mut h = Harness { filter: None };
        let mut g = h.group("smoke");
        g.sample_size(3);
        let mut count = 0u64;
        g.bench("counter", || {
            count += 1;
            count
        });
        g.finish();
        assert!(count > 0, "closure executed");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let h = Harness {
            filter: Some("nomatch".into()),
        };
        let mut h = h;
        let mut g = h.group("smoke");
        let mut ran = false;
        g.bench("skipped", || ran = true);
        assert!(!ran, "filtered bench must not run");
    }

    #[test]
    fn black_box_passes_value() {
        assert_eq!(black_box(41) + 1, 42);
    }

    #[test]
    fn ns_formatting_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2e9).ends_with(" s"));
    }
}
