//! One function per paper table/figure: runs the experiment(s) and renders
//! the same rows/series the paper reports. Returned strings are printed by
//! the `figures` binary and captured into EXPERIMENTS.md.

use std::fmt::Write as _;

use ano_accel::{table1_row, Cipher};
use ano_sim::cost::CostModel;
use ano_sim::link::Impairments;
use ano_sim::time::SimDuration;

use crate::data;
use crate::runners::*;

fn header(id: &str, what: &str) -> String {
    format!("\n=== {id}: {what} ===\n")
}

/// Fig. 2 — L5P overheads: cycles per message and the offloadable fraction.
pub fn fig02() -> String {
    let m = CostModel::calibrated();
    let mut out = header("Fig 2", "L5P overheads (cycles per message, offloadable %)");

    // NVMe-TCP, 256 KiB messages, DRAM-resident working set (like Fig. 2's
    // high-parallelism fio setup).
    let size = 256 * 1024;
    let pkts = (size as u64).div_ceil(1448);
    let other = m.per_req_nvme
        + pkts * m.per_pkt_nvme_rx
        + CostModel::bytes_cycles(m.stack_cpb, size);
    let crc = m.crc_cycles(size);
    let copy = m.copy_cycles(size, 64 << 20);
    let write_total = other + crc; // write: CRC outgoing, no rx copy
    let read_total = other + crc + copy; // read: verify CRC + copy
    writeln!(out, "NVMe-TCP write: total={:>7} cycles  offloadable(crc)     ={:>7} ({:>4.1}%)",
        write_total, crc, 100.0 * crc as f64 / write_total as f64).unwrap();
    writeln!(out, "NVMe-TCP read : total={:>7} cycles  offloadable(copy+crc)={:>7} ({:>4.1}%)",
        read_total, crc + copy, 100.0 * (crc + copy) as f64 / read_total as f64).unwrap();

    // TLS, 16 KiB records.
    let rec = 16 * 1024;
    let rpkts = 12u64;
    let tx_other = m.per_record_tx + rpkts * m.per_pkt_tx + CostModel::bytes_cycles(m.stack_cpb, rec);
    let rx_other = m.per_record_rx + rpkts * m.per_pkt_rx + CostModel::bytes_cycles(m.stack_cpb, rec);
    let enc = m.encrypt_cycles(rec);
    let dec = m.decrypt_cycles(rec);
    writeln!(out, "TLS transmit  : total={:>7} cycles  offloadable(encrypt) ={:>7} ({:>4.1}%)",
        tx_other + enc, enc, 100.0 * enc as f64 / (tx_other + enc) as f64).unwrap();
    writeln!(out, "TLS receive   : total={:>7} cycles  offloadable(decrypt) ={:>7} ({:>4.1}%)",
        rx_other + dec, dec, 100.0 * dec as f64 / (rx_other + dec) as f64).unwrap();
    writeln!(out, "(paper: write 46%, read 49%, tx 74%, rx 60%)").unwrap();
    out
}

/// Table 1 — QAT (off-CPU) vs AES-NI (on-CPU) encryption bandwidth.
pub fn tab01() -> String {
    let mut out = header("Table 1", "QAT vs AES-NI bandwidth, MB/s, 16 KiB blocks, 1 core");
    writeln!(out, "{:<28} {:>8} {:>9} {:>9}", "cipher", "QAT 1", "QAT 128", "AES-NI 1").unwrap();
    for (name, cipher) in [
        ("AES-128-CBC-HMAC-SHA1", Cipher::Aes128CbcHmacSha1),
        ("AES-128-GCM", Cipher::Aes128Gcm),
    ] {
        let (q1, q128, aesni) = table1_row(cipher, 16 * 1024);
        writeln!(out, "{name:<28} {q1:>8.0} {q128:>9.0} {aesni:>9.0}").unwrap();
    }
    writeln!(out, "(paper: 249/3144/695 and 249/3109/3150)").unwrap();
    out
}

/// Fig. 3 — Linux TCP/IP LoC per year (data reproduction).
pub fn fig03() -> String {
    let mut out = header("Fig 3", "Linux TCP/IP stack LoC per year (data reproduction)");
    writeln!(out, "{:>6} {:>10} {:>10} {:>7}", "year", "modified", "total", "churn%").unwrap();
    for y in data::LINUX_TCPIP_LOC {
        writeln!(
            out,
            "{:>6} {:>10} {:>10} {:>6.1}%",
            y.year,
            y.modified,
            y.total,
            100.0 * y.modified as f64 / y.total as f64
        )
        .unwrap();
    }
    out
}

/// Fig. 4 / Table 2 — ConnectX prices vs capability (data reproduction).
pub fn fig04() -> String {
    let mut out = header("Fig 4", "ConnectX NIC prices (March 2020 list, data reproduction)");
    writeln!(out, "{:>4} {:>6} {:>6} {:>8}", "gen", "Gbps", "ports", "USD").unwrap();
    for p in data::CONNECTX_PRICES {
        writeln!(out, "{:>4} {:>6} {:>6} {:>8.0}", p.generation, p.speed_gbps, p.ports, p.usd).unwrap();
    }
    writeln!(out, "\nTable 2 — offloads added per generation:").unwrap();
    for (gen, year, what) in data::GENERATION_OFFLOADS {
        writeln!(out, "  gen {gen} ({year}): {what}").unwrap();
    }
    out
}

/// Fig. 10 — fio cycles per random read vs I/O depth.
pub fn fig10(quick: bool) -> String {
    let mut out = header("Fig 10", "NVMe-TCP/fio cycles per random read (1 core)");
    let depths: &[usize] = if quick { &[1, 64, 1024] } else { &[1, 4, 16, 64, 256, 1024, 4096] };
    for size in [4 * 1024u32, 256 * 1024] {
        writeln!(out, "-- {} KiB reads --", size / 1024).unwrap();
        writeln!(
            out,
            "{:>6} {:>10} {:>9} {:>9} {:>10} {:>10} {:>7}",
            "depth", "cycles/rq", "crc", "copy", "other", "idle", "off%"
        )
        .unwrap();
        for &depth in depths {
            // Deep queues complete lumpily; lengthen the window so the
            // per-request normalization is not dominated by in-flight work.
            let scale = (depth as u64 / 64).clamp(1, 16);
            let r = run_fio(&FioCfg {
                size,
                depth,
                offload: false,
                window: SimDuration::from_nanos(quick_window(quick).as_nanos() * scale),
                seed: 10 + depth as u64,
            });
            writeln!(
                out,
                "{:>6} {:>10.0} {:>9.0} {:>9.0} {:>10.0} {:>10.0} {:>6.1}%",
                depth,
                r.busy_per_req,
                r.crc_per_req,
                r.copy_per_req,
                r.other_per_req,
                r.idle_per_req,
                r.offloadable_pct
            )
            .unwrap();
        }
    }
    writeln!(out, "(paper: 4KiB 2-8%; 256KiB 25% LLC-resident, ~55% once DRAM-bound)").unwrap();
    out
}

/// Fig. 11 + §6.1 — kTLS/iperf cycles per record and offload speedups.
pub fn fig11(quick: bool) -> String {
    let mut out = header("Fig 11", "kTLS/iperf per-record cycles and §6.1 offload speedups");
    let m = CostModel::calibrated();
    let sizes: &[usize] = if quick { &[2048, 16384] } else { &[2048, 4096, 8192, 16384] };
    writeln!(
        out,
        "{:>9} {:>12} {:>8} {:>12} {:>8}",
        "record", "tx cyc/rec", "crypto%", "rx cyc/rec", "crypto%"
    )
    .unwrap();
    for &rec in sizes {
        let r = run_iperf(&IperfCfg {
            variant: Variant::TlsSw,
            conns: 1,
            message: rec,
            cores: [1, 1],
            window: quick_window(quick),
            ..Default::default()
        });
        let enc = m.encrypt_cycles(rec) as f64;
        let dec = m.decrypt_cycles(rec) as f64;
        writeln!(
            out,
            "{:>8}K {:>12.0} {:>7.0}% {:>12.0} {:>7.0}%",
            rec / 1024,
            r.tx_cycles_per_record,
            100.0 * enc / r.tx_cycles_per_record.max(1.0),
            r.rx_cycles_per_record,
            100.0 * dec / r.rx_cycles_per_record.max(1.0)
        )
        .unwrap();
    }

    // §6.1: single-core throughput ratios (tx-bound then rx-bound).
    let base_tx = run_iperf(&IperfCfg {
        variant: Variant::TlsSw,
        conns: 4,
        message: 16384,
        cores: [1, 8],
        window: quick_window(quick),
        ..Default::default()
    });
    let off_tx = run_iperf(&IperfCfg {
        variant: Variant::TlsOffloadZc,
        conns: 4,
        message: 16384,
        cores: [1, 8],
        window: quick_window(quick),
        ..Default::default()
    });
    let base_rx = run_iperf(&IperfCfg {
        variant: Variant::TlsSw,
        conns: 4,
        message: 16384,
        cores: [8, 1],
        window: quick_window(quick),
        ..Default::default()
    });
    let off_rx = run_iperf(&IperfCfg {
        variant: Variant::TlsOffloadZc,
        conns: 4,
        message: 16384,
        cores: [8, 1],
        window: quick_window(quick),
        ..Default::default()
    });
    writeln!(
        out,
        "single-core tx: {:.1} -> {:.1} Gbps ({:.1}x; paper 3.3x)",
        base_tx.gbps,
        off_tx.gbps,
        off_tx.gbps / base_tx.gbps.max(0.001)
    )
    .unwrap();
    writeln!(
        out,
        "single-core rx: {:.1} -> {:.1} Gbps ({:.1}x; paper 2.2x)",
        base_rx.gbps,
        off_rx.gbps,
        off_rx.gbps / base_rx.gbps.max(0.001)
    )
    .unwrap();
    writeln!(out, "(paper Fig 11: 16K records ~40K tx / ~47K rx cycles, 70%/60% crypto)").unwrap();
    out
}

fn sizes_for(quick: bool) -> &'static [usize] {
    if quick {
        &[16 * 1024, 256 * 1024]
    } else {
        &[4 * 1024, 16 * 1024, 64 * 1024, 256 * 1024]
    }
}

/// Fig. 12 — nginx C1 with the NVMe-TCP offload.
pub fn fig12(quick: bool) -> String {
    let mut out = header("Fig 12", "nginx C1 (storage-bound) with NVMe-TCP offload");
    writeln!(
        out,
        "{:>8} | {:>9} {:>9} | {:>9} {:>9} | {:>7} {:>7}",
        "file", "1c base", "1c off", "8c base", "8c off", "bc base", "bc off"
    )
    .unwrap();
    for &size in sizes_for(quick) {
        let mut row = Vec::new();
        let mut busy = Vec::new();
        for cores in [1usize, 8] {
            for nv in [NvmeVariant::Baseline, NvmeVariant::Offload] {
                let r = run_rr(&RrCfg {
                    front: Variant::Http,
                    storage: Some((nv, false)),
                    conns: if quick { 32 } else { 128 },
                    response: size,
                    cores: [cores, 12],
                    window: quick_window(quick),
                    ..Default::default()
                });
                row.push(r.gbps);
                if cores == 8 {
                    busy.push(r.busy_cores);
                }
            }
        }
        writeln!(
            out,
            "{:>6}Ki | {:>9.2} {:>9.2} | {:>9.2} {:>9.2} | {:>7.2} {:>7.2}",
            size / 1024,
            row[0],
            row[1],
            row[2],
            row[3],
            busy[0],
            busy[1]
        )
        .unwrap();
    }
    writeln!(out, "(paper: 1-core gains 4%-44% with size; 8-core drive-bound ~21.4 Gbps, CPU saved up to 27%)").unwrap();
    out
}

/// Fig. 13 — nginx C2 with the TLS offload variants.
pub fn fig13(quick: bool) -> String {
    let mut out = header("Fig 13", "nginx C2 (page cache) with TLS offload variants");
    let variants = [Variant::TlsSw, Variant::TlsOffload, Variant::TlsOffloadZc, Variant::Http];
    for cores in [1usize, 8] {
        writeln!(out, "-- {cores} core(s): Gbps (busy cores) --").unwrap();
        write!(out, "{:>8} |", "file").unwrap();
        for v in variants {
            write!(out, " {:>20}", v.label()).unwrap();
        }
        writeln!(out).unwrap();
        for &size in sizes_for(quick) {
            write!(out, "{:>6}Ki |", size / 1024).unwrap();
            for v in variants {
                let r = run_rr(&RrCfg {
                    front: v,
                    storage: None,
                    conns: if quick { 32 } else { 128 },
                    response: size,
                    cores: [cores, 16],
                    window: quick_window(quick),
                    ..Default::default()
                });
                write!(out, " {:>12.2} ({:>4.2})", r.gbps, r.busy_cores).unwrap();
            }
            writeln!(out).unwrap();
        }
    }
    writeln!(out, "(paper: 1-core offload+zc up to 2.7x https; 8-core line-rate, 88% higher at 256Ki)").unwrap();
    out
}

/// Fig. 14 — nginx C1 with the combined NVMe-TLS offload.
pub fn fig14(quick: bool) -> String {
    let mut out = header("Fig 14", "nginx C1 with the combined NVMe-TLS offload");
    writeln!(
        out,
        "{:>8} | {:>9} {:>9} | {:>9} {:>9} | {:>7} {:>7}",
        "file", "1c base", "1c off", "8c base", "8c off", "bc base", "bc off"
    )
    .unwrap();
    for &size in sizes_for(quick) {
        let mut row = Vec::new();
        let mut busy = Vec::new();
        for cores in [1usize, 8] {
            for (nv, front) in [
                (NvmeVariant::Baseline, Variant::TlsSw),
                (NvmeVariant::Offload, Variant::TlsOffloadZc),
            ] {
                let r = run_rr(&RrCfg {
                    front,
                    storage: Some((nv, true)),
                    conns: if quick { 32 } else { 128 },
                    response: size,
                    cores: [cores, 12],
                    window: quick_window(quick),
                    ..Default::default()
                });
                row.push(r.gbps);
                if cores == 8 {
                    busy.push(r.busy_cores);
                }
            }
        }
        writeln!(
            out,
            "{:>6}Ki | {:>9.2} {:>9.2} | {:>9.2} {:>9.2} | {:>7.2} {:>7.2}",
            size / 1024,
            row[0],
            row[1],
            row[2],
            row[3],
            busy[0],
            busy[1]
        )
        .unwrap();
    }
    writeln!(out, "(paper: 1-core up to 2.8x; 8-core drive-bound with up to 41% CPU saved)").unwrap();
    out
}

/// Fig. 15 — Redis-on-Flash with the combined NVMe-TLS offload.
pub fn fig15(quick: bool) -> String {
    let mut out = header("Fig 15", "Redis-on-Flash (OffloadDB) with NVMe-TLS offload");
    writeln!(
        out,
        "{:>8} | {:>9} {:>9} | {:>9} {:>9} | {:>7} {:>7}",
        "value", "1c base", "1c off", "8c base", "8c off", "bc base", "bc off"
    )
    .unwrap();
    for &size in sizes_for(quick) {
        let mut row = Vec::new();
        let mut busy = Vec::new();
        for cores in [1usize, 8] {
            for (nv, front) in [
                (NvmeVariant::Baseline, Variant::TlsSw),
                (NvmeVariant::Offload, Variant::TlsOffloadZc),
            ] {
                let r = run_rr(&RrCfg {
                    front,
                    storage: Some((nv, true)),
                    conns: 8 * cores, // 8 connections per instance, instance per core
                    request: 64,
                    response: size,
                    cores: [cores, 12],
                    window: quick_window(quick),
                    ..Default::default()
                });
                row.push(r.gbps);
                if cores == 8 {
                    busy.push(r.busy_cores);
                }
            }
        }
        writeln!(
            out,
            "{:>6}Ki | {:>9.2} {:>9.2} | {:>9.2} {:>9.2} | {:>7.2} {:>7.2}",
            size / 1024,
            row[0],
            row[1],
            row[2],
            row[3],
            busy[0],
            busy[1]
        )
        .unwrap();
    }
    writeln!(out, "(paper: 1-core up to 2.3x; 8-core 12-26% higher, up to 48% CPU saved)").unwrap();
    out
}

/// Table 4 — single synchronous GET latency with cumulative offloads.
pub fn tab04(quick: bool) -> String {
    let mut out = header("Table 4", "mean GET latency (µs), offloads added cumulatively");
    writeln!(
        out,
        "{:>8} {:>9} {:>9} {:>9} {:>9}",
        "size", "base", "+TLS", "+copy", "+CRC"
    )
    .unwrap();
    let reqs = if quick { 40 } else { 200 };
    for &size in sizes_for(quick) {
        let combos = [
            (false, false, false),
            (true, false, false),
            (true, true, false),
            (true, true, true),
        ];
        let vals: Vec<f64> = combos
            .iter()
            .map(|&(tls, copy, crc)| {
                run_latency(&LatencyCfg {
                    response: size,
                    tls_offload: tls,
                    copy_offload: copy,
                    crc_offload: crc,
                    requests: reqs,
                    seed: 99,
                })
            })
            .collect();
        writeln!(
            out,
            "{:>6}Ki {:>9.0} {:>8.0} ({:.2}) {:>4.0} ({:.2}) {:>4.0} ({:.2})",
            size / 1024,
            vals[0],
            vals[1],
            vals[1] / vals[0],
            vals[2],
            vals[2] / vals[0],
            vals[3],
            vals[3] / vals[0]
        )
        .unwrap();
    }
    writeln!(out, "(paper: 256K 1321 -> 1056 (0.80) -> 980 (0.74) -> 941 (0.71))").unwrap();
    out
}

fn loss_points(quick: bool) -> &'static [f64] {
    if quick {
        &[0.0, 0.02]
    } else {
        &[0.0, 0.01, 0.02, 0.03, 0.04, 0.05]
    }
}

/// Fig. 16 — sender-side loss sweep: throughput + PCIe recovery overhead.
pub fn fig16(quick: bool) -> String {
    let mut out = header("Fig 16", "loss at sender: 1-core Gbps and PCIe recovery overhead");
    writeln!(
        out,
        "{:>6} {:>9} {:>9} {:>9} {:>10}",
        "loss%", "tcp", "offload", "tls", "pcie-ovh%"
    )
    .unwrap();
    for &p in loss_points(quick) {
        let mk = |variant| {
            run_iperf(&IperfCfg {
                variant,
                conns: 16,
                message: 16 * 1024,
                cores: [1, 12],
                impair: Impairments::loss(p),
                window: quick_window(quick),
                ..Default::default()
            })
        };
        let tcp = mk(Variant::Http);
        let off = mk(Variant::TlsOffloadZc);
        let tls = mk(Variant::TlsSw);
        writeln!(
            out,
            "{:>6.1} {:>9.2} {:>9.2} {:>9.2} {:>9.3}%",
            p * 100.0,
            tcp.gbps,
            off.gbps,
            tls.gbps,
            off.pcie_overhead_pct
        )
        .unwrap();
    }
    writeln!(out, "(paper: offload within 8-11% of TCP; >=33% above software TLS; PCIe <=2.5%)").unwrap();
    out
}

fn rx_sweep(title: String, quick: bool, imp: fn(f64) -> Impairments, note: &str) -> String {
    let mut out = title;
    writeln!(
        out,
        "{:>6} {:>9} {:>9} {:>9} | {:>6} {:>8} {:>6}",
        "rate%", "tcp", "offload", "tls", "full%", "partial%", "none%"
    )
    .unwrap();
    for &p in loss_points(quick) {
        let mk = |variant| {
            run_iperf(&IperfCfg {
                variant,
                conns: 16,
                message: 16 * 1024,
                cores: [12, 1],
                impair: imp(p),
                window: quick_window(quick),
                ..Default::default()
            })
        };
        let tcp = mk(Variant::Http);
        let off = mk(Variant::TlsOffloadZc);
        let tls = mk(Variant::TlsSw);
        let t = off.class.total().max(1) as f64;
        writeln!(
            out,
            "{:>6.1} {:>9.2} {:>9.2} {:>9.2} | {:>5.1}% {:>7.1}% {:>5.1}%",
            p * 100.0,
            tcp.gbps,
            off.gbps,
            tls.gbps,
            100.0 * off.class.full as f64 / t,
            100.0 * off.class.partial as f64 / t,
            100.0 * off.class.none as f64 / t
        )
        .unwrap();
    }
    writeln!(out, "{note}").unwrap();
    out
}

/// Fig. 17 — receiver-side loss sweep with record classification.
pub fn fig17(quick: bool) -> String {
    rx_sweep(
        header("Fig 17", "loss at receiver: 1-core Gbps and record classification"),
        quick,
        Impairments::loss,
        "(paper: >=19% above software TLS at 5% loss; >half the records still fully offloaded)",
    )
}

/// Fig. 18 — receiver-side reordering sweep with record classification.
pub fn fig18(quick: bool) -> String {
    rx_sweep(
        header("Fig 18", "reordering at receiver: 1-core Gbps and record classification"),
        quick,
        Impairments::reorder,
        "(paper: 9% above software TLS at 2%; at 5% performance matches software TLS)",
    )
}

/// Fig. 19 — connection-count scalability against the NIC context cache.
pub fn fig19(quick: bool) -> String {
    let mut out = header(
        "Fig 19",
        "scalability vs NIC context cache (cache capacity scaled 1:20 to 1024 contexts)",
    );
    let conn_counts: &[usize] = if quick { &[64, 1024] } else { &[64, 256, 1024, 4096] };
    writeln!(
        out,
        "{:>7} {:>12} {:>22} {:>12} {:>10}",
        "conns", "https Gbps", "offload+zc Gbps(hit%)", "http Gbps", "busy(off)"
    )
    .unwrap();
    for &conns in conn_counts {
        let mk = |variant| {
            run_rr(&RrCfg {
                front: variant,
                storage: None,
                conns,
                response: 256 * 1024,
                cores: [8, 16],
                nic_cache: 1024,
                // Thousands of connections take longer to leave the
                // start-up transient; scale the warm-up accordingly.
                warmup: SimDuration::from_millis(30 * (conns as u64 / 256).clamp(1, 12)),
                window: quick_window(quick),
                ..Default::default()
            })
        };
        let https = mk(Variant::TlsSw);
        let off = mk(Variant::TlsOffloadZc);
        let http = mk(Variant::Http);
        writeln!(
            out,
            "{:>7} {:>12.2} {:>15.2} ({:>4.1}) {:>12.2} {:>10.2}",
            conns, https.gbps, off.gbps, off.cache_hit_pct, http.gbps, off.busy_cores
        )
        .unwrap();
    }
    writeln!(out, "(paper: offload+zc stays within 10% of http and 53-94% above https up to 128K conns)").unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_figures_render() {
        for s in [fig02(), tab01(), fig03(), fig04()] {
            assert!(s.lines().count() > 3, "{s}");
        }
    }

    #[test]
    fn tab01_shape_matches_paper() {
        let (q1, q128, aesni) = table1_row(Cipher::Aes128CbcHmacSha1, 16 * 1024);
        assert!(q1 < aesni && q128 > aesni);
        let (g1, g128, gni) = table1_row(Cipher::Aes128Gcm, 16 * 1024);
        assert!(g1 < gni / 5.0 && (g128 / gni) > 0.8 && (g128 / gni) < 1.25);
    }

    #[test]
    fn fig11_speedups_match_paper_band() {
        // Quick single-point check of the §6.1 headline ratios.
        let base = run_iperf(&IperfCfg {
            variant: Variant::TlsSw,
            conns: 4,
            message: 16384,
            cores: [1, 8],
            window: SimDuration::from_millis(30),
            ..Default::default()
        });
        let off = run_iperf(&IperfCfg {
            variant: Variant::TlsOffloadZc,
            conns: 4,
            message: 16384,
            cores: [1, 8],
            window: SimDuration::from_millis(30),
            ..Default::default()
        });
        let speedup = off.gbps / base.gbps;
        assert!((2.2..4.5).contains(&speedup), "tx speedup {speedup:.2} (paper 3.3x)");
    }

    #[test]
    fn fig16_offload_tracks_tcp_under_loss() {
        let mk = |variant, loss| {
            run_iperf(&IperfCfg {
                variant,
                conns: 16,
                message: 16 * 1024,
                cores: [1, 12],
                impair: Impairments::loss(loss),
                window: SimDuration::from_millis(30),
                ..Default::default()
            })
        };
        let off = mk(Variant::TlsOffloadZc, 0.02);
        let tls = mk(Variant::TlsSw, 0.02);
        assert!(off.gbps > tls.gbps, "offload beats software TLS under loss");
        assert!(off.pcie_overhead_pct < 5.0, "PCIe overhead small: {}", off.pcie_overhead_pct);
        assert!(off.retransmits > 0, "loss actually caused retransmissions");
    }
}

/// Ablations (DESIGN.md §6): design choices the paper calls out, each
/// perturbed in isolation.
pub fn ablations(quick: bool) -> String {
    let mut out = header("Ablations", "design-choice sensitivity studies");
    let m = CostModel::calibrated();

    // A1 — NIC context-cache capacity (the §6.5 scaling knob).
    writeln!(out, "-- A1: context-cache capacity (2048 conns, C2, offload+zc) --").unwrap();
    writeln!(out, "{:>9} {:>10} {:>7} {:>7}", "capacity", "Gbps", "hit%", "busy").unwrap();
    let caps: &[usize] = if quick { &[256, 4096] } else { &[256, 1024, 4096, 16384] };
    for &cap in caps {
        let r = run_rr(&RrCfg {
            front: Variant::TlsOffloadZc,
            conns: 2048,
            response: 256 * 1024,
            cores: [8, 16],
            nic_cache: cap,
            warmup: SimDuration::from_millis(120),
            window: quick_window(quick),
            ..Default::default()
        });
        writeln!(out, "{:>9} {:>10.2} {:>6.1}% {:>7.2}", cap, r.gbps, r.cache_hit_pct, r.busy_cores).unwrap();
    }
    writeln!(out, "(expected: hit rate collapses below ~4096 contexts; throughput does not cliff)").unwrap();

    // A2 — resync confirmation latency under receiver-side loss.
    writeln!(out, "\n-- A2: driver<->L5P resync delay (rx, 2% loss, offload+zc) --").unwrap();
    writeln!(out, "{:>9} {:>10} {:>7} {:>9}", "delay us", "Gbps", "full%", "resyncs").unwrap();
    let delays: &[u64] = if quick { &[5, 100] } else { &[1, 5, 20, 100] };
    for &d in delays {
        let r = run_iperf(&IperfCfg {
            variant: Variant::TlsOffloadZc,
            conns: 16,
            message: 16 * 1024,
            cores: [12, 1],
            impair: Impairments::loss(0.02),
            resync_delay: SimDuration::from_micros(d),
            window: quick_window(quick),
            ..Default::default()
        });
        let t = r.class.total().max(1) as f64;
        writeln!(out, "{:>9} {:>10.2} {:>6.1}% {:>9}", d, r.gbps, 100.0 * r.class.full as f64 / t, r.retransmits).unwrap();
    }
    writeln!(out, "(expected: slower confirmation -> longer tracking windows -> fewer fully offloaded records)").unwrap();

    // A3 — the §5.2 partial-record fallback penalty (analytic).
    writeln!(out, "\n-- A3: software fallback cost for one 16 KiB record --").unwrap();
    let rec = 16 * 1024usize;
    writeln!(out, "fully offloaded : {:>7} cycles", m.per_record_rx).unwrap();
    writeln!(out, "fully software  : {:>7} cycles", m.per_record_rx + m.decrypt_cycles(rec)).unwrap();
    for frac in [0.25f64, 0.5, 0.75] {
        let off = (rec as f64 * frac) as usize;
        let cyc = m.per_record_rx + m.decrypt_cycles(rec) + CostModel::bytes_cycles(m.aes_gcm_enc_cpb, off);
        writeln!(out, "partial ({:>3.0}% offloaded): {:>7} cycles — costlier than full software (§5.2)",
            frac * 100.0, cyc).unwrap();
    }

    // A4 — why resync must be hardware-driven (§4.3's raciness argument).
    writeln!(out, "\n-- A4: naive software-driven resync (analytic) --").unwrap();
    writeln!(out, "A software-driven scheme tells the NIC where a message started after").unwrap();
    writeln!(out, "the fact; it wins only if no newer bytes passed meanwhile, i.e. with").unwrap();
    writeln!(out, "probability ~max(0, 1 - rate x delay / record):").unwrap();
    writeln!(out, "{:>10} {:>10} {:>12}", "rate", "delay", "P(resume)").unwrap();
    for (gbps, delay_us) in [(10.0f64, 10.0f64), (25.0, 10.0), (100.0, 10.0), (100.0, 5.0)] {
        let bytes_in_flight = gbps * 1e9 / 8.0 * delay_us * 1e-6;
        let p = (1.0 - bytes_in_flight / (16.0 * 1024.0)).max(0.0);
        writeln!(out, "{:>7.0}Gbps {:>8.0}us {:>11.2}", gbps, delay_us, p).unwrap();
    }
    writeln!(out, "(at line rate the naive scheme essentially never converges — the paper's").unwrap();
    writeln!(out, " hardware-driven speculate-track-confirm design exists for this reason)").unwrap();
    out
}
