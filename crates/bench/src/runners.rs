//! Reusable experiment engines: each sets up a [`World`], runs a warm-up,
//! measures a window, and returns the quantities the paper's figures plot.

use ano_apps::fio::Fio;
use ano_apps::httpd::{Backing, Client, Server};
use ano_apps::iperf::{IperfSender, IperfSink};
use ano_core::fault::DeviceFaults;
use ano_core::nic::NicConfig;
use ano_sim::link::Impairments;
use ano_sim::payload::DataMode;
use ano_sim::time::{SimDuration, SimTime};
use ano_stack::prelude::*;
use ano_tcp::TcpConfig;
use ano_tls::ktls::RecordClass;

/// The four §6.3 transport variants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Plain TCP ("http").
    Http,
    /// Software kTLS ("https" baseline).
    TlsSw,
    /// kTLS + NIC crypto offload.
    TlsOffload,
    /// kTLS + NIC crypto offload + zero-copy sendfile.
    TlsOffloadZc,
}

impl Variant {
    /// Connection spec for this variant.
    pub fn spec(self) -> ConnSpec {
        match self {
            Variant::Http => ConnSpec::Raw,
            Variant::TlsSw => ConnSpec::Tls(TlsSpec::default()),
            Variant::TlsOffload => ConnSpec::Tls(TlsSpec::offloaded()),
            Variant::TlsOffloadZc => ConnSpec::Tls(TlsSpec::offloaded_zc()),
        }
    }

    /// Display label (the paper's legend names).
    pub fn label(self) -> &'static str {
        match self {
            Variant::Http => "http",
            Variant::TlsSw => "https",
            Variant::TlsOffload => "offload",
            Variant::TlsOffloadZc => "offload+zc",
        }
    }
}

/// iperf run parameters.
#[derive(Clone, Debug)]
pub struct IperfCfg {
    /// Transport variant.
    pub variant: Variant,
    /// Parallel streams.
    pub conns: usize,
    /// Application message size per send.
    pub message: usize,
    /// Sender cores (host 0) and receiver cores (host 1).
    pub cores: [usize; 2],
    /// Impairments on the data direction (0 → 1).
    pub impair: Impairments,
    /// Driver ↔ L5P resync notification delay (ablation A2).
    pub resync_delay: SimDuration,
    /// Warm-up before measuring.
    pub warmup: SimDuration,
    /// Measurement window.
    pub window: SimDuration,
    /// Seed.
    pub seed: u64,
    /// Enable the world tracer (the `trace_overhead` bench measures the
    /// cost of flipping this; figures leave it off).
    pub trace: bool,
    /// Device-fault plan installed on the receiver before connecting (the
    /// `fault_overhead` bench measures its cost; figures leave it empty).
    pub faults: DeviceFaults,
}

impl Default for IperfCfg {
    fn default() -> Self {
        IperfCfg {
            variant: Variant::TlsOffloadZc,
            conns: 1,
            message: 256 * 1024,
            cores: [1, 8],
            impair: Impairments::none(),
            resync_delay: SimDuration::from_micros(5),
            warmup: SimDuration::from_millis(60),
            window: SimDuration::from_millis(100),
            seed: 42,
            trace: false,
            faults: DeviceFaults::none(),
        }
    }
}

/// iperf results.
#[derive(Clone, Debug)]
pub struct IperfResult {
    /// Goodput over the window, Gbit/s.
    pub gbps: f64,
    /// Busy cores at the sender over the window.
    pub busy_tx: f64,
    /// Busy cores at the receiver over the window.
    pub busy_rx: f64,
    /// Sender CPU cycles per record framed (whole run).
    pub tx_cycles_per_record: f64,
    /// Receiver CPU cycles per record (whole run).
    pub rx_cycles_per_record: f64,
    /// Receive-side record classification (whole run).
    pub class: RecordClass,
    /// Sender-side PCIe recovery traffic as a fraction of PCIe capacity.
    pub pcie_overhead_pct: f64,
    /// Total retransmissions at the sender.
    pub retransmits: u64,
}

/// Runs an iperf-style streaming experiment.
pub fn run_iperf(cfg: &IperfCfg) -> IperfResult {
    let mut w = World::new(WorldConfig {
        seed: cfg.seed,
        mode: DataMode::Modeled,
        cores: cfg.cores,
        impair_0to1: cfg.impair.clone(),
        resync_delay: cfg.resync_delay,
        tcp: dc_tcp(),
        ..Default::default()
    });
    w.tracer().set_enabled(cfg.trace);
    w.set_device_faults(1, cfg.faults.clone());
    let conns: Vec<ConnId> = (0..cfg.conns)
        .map(|_| w.connect(cfg.variant.spec(), cfg.variant.spec()))
        .collect();
    let sender = IperfSender::new(conns.clone(), cfg.message, DataMode::Modeled);
    let sink = IperfSink::new();
    w.set_app(0, Box::new(sender));
    w.set_app(1, Box::new(sink));
    w.start();
    w.run_until(SimTime::ZERO + cfg.warmup);

    let t0 = w.now();
    let snap_tx = w.cpu_snapshot(0);
    let snap_rx = w.cpu_snapshot(1);
    let delivered0: u64 = conns.iter().map(|&c| w.delivered_bytes(1, c)).sum();
    let pcie0 = w.nic_counters(0).pcie_replay_bytes;
    w.run_until(t0 + cfg.window);
    let elapsed = w.now().since(t0);
    let delivered1: u64 = conns.iter().map(|&c| w.delivered_bytes(1, c)).sum();
    let pcie1 = w.nic_counters(0).pcie_replay_bytes;

    let gbps = (delivered1 - delivered0) as f64 * 8.0 / elapsed.as_secs_f64() / 1e9;
    let busy_tx = w.busy_cores_since(0, &snap_tx, elapsed);
    let busy_rx = w.busy_cores_since(1, &snap_rx, elapsed);

    // Per-record cycle costs over the whole run (records framed at host 0).
    let mut class = RecordClass::default();
    let mut records = 0u64;
    for &c in &conns {
        if let Some(k) = w.ktls_rx_stats(1, c) {
            class.full += k.class.full;
            class.partial += k.class.partial;
            class.none += k.class.none;
            records += k.class.total();
        } else {
            // Raw: count "records" as messages for cycle normalization.
            records += w.delivered_bytes(1, c) / cfg.message as u64;
        }
    }
    let records = records.max(1);
    let pcie_bps_used = (pcie1 - pcie0) as f64 * 8.0 / elapsed.as_secs_f64();
    let retransmits = conns
        .iter()
        .map(|&c| w.tcp_tx_stats(0, c).map(|s| s.retransmits).unwrap_or(0))
        .sum();
    IperfResult {
        gbps,
        busy_tx,
        busy_rx,
        tx_cycles_per_record: w.cpu_busy_cycles(0) as f64 / records as f64,
        rx_cycles_per_record: w.cpu_busy_cycles(1) as f64 / records as f64,
        class,
        pcie_overhead_pct: 100.0 * pcie_bps_used / w.cost().pcie_bps as f64,
        retransmits,
    }
}

/// Whether NVMe offloads are applied on a storage connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NvmeVariant {
    /// Software copy + CRC.
    Baseline,
    /// NIC copy + CRC offloads.
    Offload,
}

/// nginx/Redis-style request-response run parameters.
#[derive(Clone, Debug)]
pub struct RrCfg {
    /// Front-end transport between client (host 1) and server (host 0).
    pub front: Variant,
    /// Storage configuration: `None` = C2 (page cache); `Some` = C1 with
    /// the given NVMe variant and whether the storage link runs inside TLS
    /// (the combined NVMe-TLS offload).
    pub storage: Option<(NvmeVariant, bool)>,
    /// Persistent client connections.
    pub conns: usize,
    /// Request size on the wire.
    pub request: usize,
    /// Response (file/value) size.
    pub response: usize,
    /// Server cores / client cores.
    pub cores: [usize; 2],
    /// Number of parallel storage queues (C1).
    pub storage_queues: usize,
    /// NIC context-cache capacity (Fig. 19 sweeps shrink it).
    pub nic_cache: usize,
    /// Warm-up and measurement window.
    pub warmup: SimDuration,
    /// Measurement window.
    pub window: SimDuration,
    /// Seed.
    pub seed: u64,
}

impl Default for RrCfg {
    fn default() -> Self {
        RrCfg {
            front: Variant::TlsOffloadZc,
            storage: None,
            conns: 64,
            request: 128,
            response: 256 * 1024,
            cores: [8, 12],
            storage_queues: 4,
            nic_cache: 20_000,
            warmup: SimDuration::from_millis(30),
            window: SimDuration::from_millis(100),
            seed: 7,
        }
    }
}

/// Request-response results.
#[derive(Clone, Debug)]
pub struct RrResult {
    /// Response goodput, Gbit/s.
    pub gbps: f64,
    /// Busy cores at the server.
    pub busy_cores: f64,
    /// Responses per second.
    pub rps: f64,
    /// Mean request latency, µs.
    pub latency_us: f64,
    /// NIC context-cache hit fraction at the server (Fig. 19).
    pub cache_hit_pct: f64,
}

/// Runs an nginx/RoF-style closed-loop experiment.
pub fn run_rr(cfg: &RrCfg) -> RrResult {
    let mut w = World::new(WorldConfig {
        seed: cfg.seed,
        mode: DataMode::Modeled,
        cores: cfg.cores,
        nic: NicConfig {
            ctx_cache_capacity: cfg.nic_cache,
            ..Default::default()
        },
        tcp: dc_tcp(),
        ..Default::default()
    });
    let front: Vec<ConnId> = (0..cfg.conns)
        .map(|_| w.connect(cfg.front.spec(), cfg.front.spec()))
        .collect();
    let backing = match cfg.storage {
        None => Backing::PageCache,
        Some((nv, over_tls)) => {
            let host_spec = match nv {
                NvmeVariant::Baseline => NvmeHostSpec::default(),
                NvmeVariant::Offload => NvmeHostSpec::offloaded(),
            };
            let target_spec = NvmeTargetSpec {
                crc_tx_offload: nv == NvmeVariant::Offload,
                crc_rx_offload: nv == NvmeVariant::Offload,
                ..Default::default()
            };
            let tls = match nv {
                NvmeVariant::Baseline => TlsSpec::default(),
                NvmeVariant::Offload => TlsSpec::offloaded_zc(),
            };
            // One storage queue per server core, like the in-kernel
            // nvme-tcp driver. The paper has a single drive: split its
            // bandwidth across the per-queue device models so the
            // aggregate ceiling stays 2.67 GB/s.
            let queues = cfg.storage_queues.max(cfg.cores[0]);
            let mut target_spec = target_spec;
            target_spec.device.bandwidth_bps /= queues as u64;
            let conns: Vec<ConnId> = (0..queues)
                .map(|_| {
                    if over_tls {
                        w.connect(
                            ConnSpec::NvmeTlsHost(host_spec, tls),
                            ConnSpec::NvmeTlsTarget(target_spec.clone(), tls),
                        )
                    } else {
                        w.connect(
                            ConnSpec::NvmeHost(host_spec),
                            ConnSpec::NvmeTarget(target_spec.clone()),
                        )
                    }
                })
                .collect();
            Backing::Storage {
                conns,
                span: 64 << 30,
            }
        }
    };
    let server = Server::new(cfg.request, cfg.response, backing, DataMode::Modeled);
    let mut client = Client::new(front.clone(), cfg.request, cfg.response, DataMode::Modeled);
    client.measure_from = SimTime::ZERO + cfg.warmup;
    let cstats = client.stats();
    w.set_app(0, Box::new(server));
    w.set_app(1, Box::new(client));
    w.start();
    w.run_until(SimTime::ZERO + cfg.warmup);

    let t0 = w.now();
    let snap = w.cpu_snapshot(0);
    let r0 = cstats.borrow().responses;
    let hits0 = w.nic_counters(0).cache_hits;
    let miss0 = w.nic_counters(0).cache_misses;
    w.run_until(t0 + cfg.window);
    let elapsed = w.now().since(t0);
    let s = cstats.borrow();
    let responses = s.responses - r0;
    let latency_us = s.latency_us.mean();
    drop(s);
    let hits = w.nic_counters(0).cache_hits - hits0;
    let misses = w.nic_counters(0).cache_misses - miss0;

    RrResult {
        gbps: responses as f64 * cfg.response as f64 * 8.0 / elapsed.as_secs_f64() / 1e9,
        busy_cores: w.busy_cores_since(0, &snap, elapsed),
        rps: responses as f64 / elapsed.as_secs_f64(),
        latency_us,
        cache_hit_pct: if hits + misses == 0 {
            100.0
        } else {
            100.0 * hits as f64 / (hits + misses) as f64
        },
    }
}

/// fio run parameters (Fig. 10).
#[derive(Clone, Debug)]
pub struct FioCfg {
    /// Read size.
    pub size: u32,
    /// Outstanding I/Os.
    pub depth: usize,
    /// Apply the NVMe offloads.
    pub offload: bool,
    /// Measurement window.
    pub window: SimDuration,
    /// Seed.
    pub seed: u64,
}

/// fio results: the Fig. 10 per-request cycle breakdown.
#[derive(Clone, Debug)]
pub struct FioResult {
    /// Requests completed in the window.
    pub completed: u64,
    /// Busy CPU cycles per request.
    pub busy_per_req: f64,
    /// Copy cycles per request, measured from the `cpu.nvme.copy` counter
    /// in the trace metrics registry over the window.
    pub copy_per_req: f64,
    /// CRC cycles per request, measured from `cpu.nvme.crc`.
    pub crc_per_req: f64,
    /// Remaining busy cycles per request.
    pub other_per_req: f64,
    /// Idle cycles per request (wall minus busy, single core).
    pub idle_per_req: f64,
    /// copy+crc as % of total busy cycles.
    pub offloadable_pct: f64,
    /// Mean latency, µs.
    pub latency_us: f64,
}

/// Runs a fio-style random-read experiment on one core.
pub fn run_fio(cfg: &FioCfg) -> FioResult {
    let mut w = World::new(WorldConfig {
        seed: cfg.seed,
        mode: DataMode::Modeled,
        cores: [1, 8],
        // Deep pipelines: fio's outstanding I/O lives at the block layer,
        // not in TCP; give the queue room so TCP never throttles it.
        tcp: TcpConfig {
            max_cwnd: 32 << 20,
            rcv_buf: 32 << 20,
            max_ooo: 64 << 20,
            ..Default::default()
        },
        ..Default::default()
    });
    let host_spec = if cfg.offload {
        NvmeHostSpec::offloaded()
    } else {
        NvmeHostSpec::default()
    };
    let conn = w.connect(
        ConnSpec::NvmeHost(host_spec),
        ConnSpec::NvmeTarget(NvmeTargetSpec {
            crc_tx_offload: cfg.offload,
            crc_rx_offload: cfg.offload,
            ..Default::default()
        }),
    );
    // Working set drives the Fig. 10 copy-cost cliff.
    let ws = cfg.size as u64 * cfg.depth as u64;
    w.set_nvme_working_set(0, conn, ws);
    // The per-request breakdown comes from the per-layer cycle counters the
    // NVMe host reports into the trace registry, so tracing stays on here.
    w.tracer().set_enabled(true);
    let mut fio = Fio::new(conn, cfg.size, cfg.depth, 64 << 30);
    let warmup = SimDuration::from_millis(20);
    fio.measure_from = SimTime::ZERO + warmup;
    let stats = fio.stats();
    w.set_app(0, Box::new(fio));
    w.start();
    w.run_until(SimTime::ZERO + warmup);

    let t0 = w.now();
    let snap = w.cpu_snapshot(0);
    let c0 = stats.borrow().completed;
    let layer0 = layer_cycles(&w);
    w.run_until(t0 + cfg.window);
    let elapsed = w.now().since(t0);
    let s = stats.borrow();
    let completed = (s.completed - c0).max(1);
    let latency_us = s.latency_us.mean();
    drop(s);

    let busy: u64 = w
        .cpu_snapshot(0)
        .iter()
        .zip(snap.iter())
        .map(|(a, b)| a - b)
        .sum();
    let busy_per_req = busy as f64 / completed as f64;
    let cost = w.cost();
    let layer1 = layer_cycles(&w);
    let copy_per_req = (layer1.0 - layer0.0) as f64 / completed as f64;
    let crc_per_req = (layer1.1 - layer0.1) as f64 / completed as f64;
    let wall_cycles = elapsed.as_secs_f64() * cost.freq_hz as f64;
    let idle_per_req = (wall_cycles - busy as f64).max(0.0) / completed as f64;
    FioResult {
        completed,
        busy_per_req,
        copy_per_req,
        crc_per_req,
        other_per_req: busy_per_req - copy_per_req - crc_per_req,
        idle_per_req,
        offloadable_pct: 100.0 * (copy_per_req + crc_per_req) / busy_per_req.max(1.0),
        latency_us,
    }
}

/// Latency run (Table 4): single connection, single outstanding GET, C1.
#[derive(Clone, Debug)]
pub struct LatencyCfg {
    /// Response size.
    pub response: usize,
    /// Front-end TLS offload on.
    pub tls_offload: bool,
    /// NVMe copy offload on.
    pub copy_offload: bool,
    /// NVMe CRC offload on.
    pub crc_offload: bool,
    /// Requests to average over.
    pub requests: u64,
    /// Seed.
    pub seed: u64,
}

/// Runs the Table 4 latency experiment; returns mean latency in µs.
pub fn run_latency(cfg: &LatencyCfg) -> f64 {
    let mut w = World::new(WorldConfig {
        seed: cfg.seed,
        mode: DataMode::Modeled,
        cores: [2, 2],
        ..Default::default()
    });
    let front_spec = if cfg.tls_offload {
        Variant::TlsOffloadZc.spec()
    } else {
        Variant::TlsSw.spec()
    };
    let front = w.connect(front_spec.clone(), front_spec);
    let host_spec = NvmeHostSpec {
        copy_offload: cfg.copy_offload,
        crc_offload: cfg.crc_offload,
        crc_tx_offload: cfg.crc_offload,
    };
    let tls = if cfg.tls_offload {
        TlsSpec::offloaded_zc()
    } else {
        TlsSpec::default()
    };
    let storage = w.connect(
        ConnSpec::NvmeTlsHost(host_spec, tls),
        ConnSpec::NvmeTlsTarget(
            NvmeTargetSpec {
                crc_tx_offload: cfg.crc_offload,
                crc_rx_offload: cfg.crc_offload,
                ..Default::default()
            },
            tls,
        ),
    );
    let server = Server::new(
        128,
        cfg.response,
        Backing::Storage {
            conns: vec![storage],
            span: 64 << 30,
        },
        DataMode::Modeled,
    );
    let mut client = Client::new(vec![front], 128, cfg.response, DataMode::Modeled);
    client.measure_from = SimTime::from_millis(5);
    let stats = client.stats();
    w.set_app(0, Box::new(server));
    w.set_app(1, Box::new(client));
    w.start();
    // Run until enough requests are measured.
    let mut deadline = SimTime::from_millis(50);
    while stats.borrow().measured_responses < cfg.requests && !w.is_idle() {
        w.run_until(deadline);
        deadline = deadline + SimDuration::from_millis(50);
        if deadline > SimTime::from_secs(20) {
            break;
        }
    }
    let s = stats.borrow();
    s.latency_us.mean()
}

/// The `(copy, crc)` cycle totals attributed to the NVMe layer so far,
/// summed across flows from the world's trace metrics registry.
fn layer_cycles(w: &World) -> (u64, u64) {
    w.tracer().with_metrics(|m| {
        (m.counter_total("cpu.nvme.copy"), m.counter_total("cpu.nvme.crc"))
    })
}

/// Datacenter-tuned TCP (back-to-back links; Linux-like fast loss
/// recovery is approximated with a 1 ms minimum RTO).
pub fn dc_tcp() -> TcpConfig {
    TcpConfig {
        min_rto: ano_sim::time::SimDuration::from_millis(4),
        // Bounded per-flow windows keep the (infinitely buffered) link's
        // standing queue below the RTO floor, as receiver windows and
        // shallow switch buffers do on real datacenter hardware.
        max_cwnd: 512 << 10,
        rcv_buf: 512 << 10,
        ..Default::default()
    }
}

/// Shared quick-mode switch for tests and smoke runs.
pub fn quick_window(quick: bool) -> SimDuration {
    if quick {
        SimDuration::from_millis(30)
    } else {
        SimDuration::from_millis(100)
    }
}

