//! # Autonomous NIC Offloads — a behavioral reproduction in Rust
//!
//! This crate is the facade over a workspace that reproduces *Autonomous
//! NIC Offloads* (Pismenny et al., ASPLOS 2021): NIC acceleration of
//! layer-5 protocols (TLS 1.3, NVMe-over-TCP) **without** offloading the
//! TCP/IP stack, including the paper's out-of-sequence resynchronization
//! machinery, transmit-side context recovery, the bounded NIC context
//! cache, and the full evaluation harness.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! # Examples
//!
//! ```
//! use autonomous_nic_offloads::core::demo::{self, DemoFlow};
//! use autonomous_nic_offloads::core::msg::DataRef;
//! use autonomous_nic_offloads::core::rx::RxEngine;
//!
//! // A NIC receive engine offloads one in-sequence demo message.
//! let mut engine = RxEngine::new(
//!     Box::new(DemoFlow::rx_functional(demo::DEFAULT_KEY)), 0, 0);
//! let mut wire = demo::encode_msg(b"hello");
//! let flags = engine.on_packet(0, &mut DataRef::Real(&mut wire));
//! assert!(flags.tls_decrypted);
//! ```

#![forbid(unsafe_code)]

pub use ano_accel as accel;
pub use ano_apps as apps;
pub use ano_core as core;
pub use ano_crypto as crypto;
pub use ano_nvme as nvme;
pub use ano_sim as sim;
pub use ano_stack as stack;
pub use ano_tcp as tcp;
pub use ano_tls as tls;
