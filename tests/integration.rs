//! Workspace-level integration tests exercising the facade across crates.

use std::cell::RefCell;
use std::rc::Rc;

use autonomous_nic_offloads::nvme::block::pattern_byte;
use autonomous_nic_offloads::sim::payload::{DataMode, Payload};
use autonomous_nic_offloads::sim::time::SimTime;
use autonomous_nic_offloads::stack::app::{AppEvent, HostApi, HostApp};
use autonomous_nic_offloads::stack::prelude::*;

struct Reader {
    conn: ConnId,
    done: Rc<RefCell<Vec<autonomous_nic_offloads::nvme::host::Completion>>>,
}

impl HostApp for Reader {
    fn on_event(&mut self, api: &mut HostApi, event: AppEvent<'_>) {
        match event {
            AppEvent::Start => api.nvme_read(self.conn, 1, 8192, 200_000),
            AppEvent::NvmeDone { completion, .. } => {
                self.done.borrow_mut().push(completion.clone())
            }
            _ => {}
        }
    }
}

/// The paper's headline composition: an encrypted remote read where the NIC
/// decrypts TLS, verifies the capsule CRC, and places the data — all three
/// offloads verified byte-for-byte through real crypto.
#[test]
fn combined_nvme_tls_read_through_the_facade() {
    let mut w = World::new(WorldConfig {
        seed: 123,
        mode: DataMode::Functional,
        ..Default::default()
    });
    let conn = w.connect(
        ConnSpec::NvmeTlsHost(NvmeHostSpec::offloaded(), TlsSpec::offloaded()),
        ConnSpec::NvmeTlsTarget(
            NvmeTargetSpec {
                crc_tx_offload: true,
                crc_rx_offload: true,
                ..Default::default()
            },
            TlsSpec::offloaded(),
        ),
    );
    let done = Rc::new(RefCell::new(Vec::new()));
    w.set_app(0, Box::new(Reader { conn, done: Rc::clone(&done) }));
    w.start();
    w.run_until(SimTime::from_secs(5));
    let comps = done.borrow();
    assert_eq!(comps.len(), 1);
    let c = &comps[0];
    assert!(c.ok);
    assert!(c.placed_bytes > 0, "copy offload active through TLS");
    let buf = c.buffer.as_ref().expect("buffer").borrow();
    assert!(buf
        .iter()
        .enumerate()
        .all(|(j, &v)| v == pattern_byte(8192 + j as u64)));
}

/// Configuration C1's invariant: the remote drive's bandwidth bounds nginx
/// throughput no matter how many cores serve it (Fig. 12's ceiling).
#[test]
fn c1_throughput_is_drive_bound() {
    use autonomous_nic_offloads::apps::httpd::{Backing, Client, Server};
    let mut w = World::new(WorldConfig {
        seed: 5,
        mode: DataMode::Modeled,
        cores: [8, 12],
        ..Default::default()
    });
    let conns: Vec<ConnId> = (0..64).map(|_| w.connect(ConnSpec::Raw, ConnSpec::Raw)).collect();
    let storage = w.connect(
        ConnSpec::NvmeHost(NvmeHostSpec::offloaded()),
        ConnSpec::NvmeTarget(NvmeTargetSpec {
            crc_tx_offload: true,
            ..Default::default()
        }),
    );
    let server = Server::new(
        128,
        256 * 1024,
        Backing::Storage { conns: vec![storage], span: 1 << 30 },
        DataMode::Modeled,
    );
    let client = Client::new(conns, 128, 256 * 1024, DataMode::Modeled);
    let stats = client.stats();
    w.set_app(0, Box::new(server));
    w.set_app(1, Box::new(client));
    w.start();
    w.run_until(SimTime::from_millis(100));
    let s = stats.borrow();
    let gbps = s.bytes as f64 * 8.0 / w.now().as_secs_f64() / 1e9;
    assert!(gbps > 5.0, "made progress: {gbps:.1} Gbps");
    assert!(gbps < 22.5, "drive-bound at ~21.4 Gbps: {gbps:.1} Gbps");
}

/// The Table 3 preconditions hold for both shipped offloads: crypto and
/// digest state export/resume at arbitrary byte positions.
#[test]
fn constant_size_state_preconditions() {
    use autonomous_nic_offloads::crypto::aes::Aes;
    use autonomous_nic_offloads::crypto::crc32c::Crc32c;
    use autonomous_nic_offloads::crypto::gcm::{Direction, GcmStream};

    let aes = Aes::new_128(&[3; 16]);
    let iv = [9u8; 12];
    let data: Vec<u8> = (0..5000u32).map(|i| (i % 255) as u8).collect();
    let mut oneshot = data.clone();
    let tag = autonomous_nic_offloads::crypto::gcm::seal(&aes, &iv, b"", &mut oneshot);

    // Split at an awkward offset, export, resume — like a NIC context
    // evicted to host memory and restored (§6.5).
    let mut buf = data.clone();
    let mut s = GcmStream::new(aes.clone(), &iv, b"", Direction::Encrypt);
    s.process(&mut buf[..1234]);
    let saved = s.export();
    let mut s2 = GcmStream::resume(aes, &iv, &saved);
    s2.process(&mut buf[1234..]);
    assert_eq!(buf, oneshot);
    assert_eq!(s2.tag(), tag);

    let mut c = Crc32c::new();
    c.update(&data[..777]);
    let st = c.export();
    let mut c2 = Crc32c::resume(st);
    c2.update(&data[777..]);
    assert_eq!(c2.finalize(), autonomous_nic_offloads::crypto::crc32c::crc32c(&data));
}

/// Modeled and functional modes must agree on behaviour: same world seed,
/// same impairments — identical packet timing, identical offload
/// classification dynamics (framing ground truth replaces byte scanning,
/// it does not change decisions).
#[test]
fn modeled_matches_functional_under_loss() {
    use autonomous_nic_offloads::sim::link::Impairments;

    let run = |mode: DataMode| {
        let mut w = World::new(WorldConfig {
            seed: 777,
            mode,
            impair_0to1: Impairments::loss(0.02),
            ..Default::default()
        });
        let conn = w.connect(
            ConnSpec::Tls(TlsSpec::offloaded()),
            ConnSpec::Tls(TlsSpec::offloaded()),
        );
        struct Send(ConnId, usize, DataMode);
        impl HostApp for Send {
            fn on_event(&mut self, api: &mut HostApi, event: AppEvent<'_>) {
                if let AppEvent::Start = event {
                    let p = match self.2 {
                        DataMode::Functional => Payload::real(vec![0x3Cu8; self.1]),
                        DataMode::Modeled => Payload::synthetic(self.1),
                    };
                    api.send(self.0, p);
                }
            }
        }
        w.set_app(0, Box::new(Send(conn, 300_000, mode)));
        w.run_until(SimTime::ZERO); // no-op; apps start below
        w.start();
        w.run_until(SimTime::from_secs(30));
        (
            w.delivered_bytes(1, conn),
            w.ktls_rx_stats(1, conn).unwrap(),
            w.rx_engine_stats(1, conn).unwrap(),
        )
    };

    let (bytes_f, ktls_f, rx_f) = run(DataMode::Functional);
    let (bytes_m, ktls_m, rx_m) = run(DataMode::Modeled);
    assert_eq!(bytes_f, 300_000, "functional delivered everything");
    assert_eq!(bytes_m, 300_000, "modeled delivered everything");
    assert_eq!(ktls_f.alerts, 0);
    // Identical seeds drive identical loss patterns; classification and
    // engine paths must match exactly.
    assert_eq!(ktls_f.class, ktls_m.class, "record classification identical");
    assert_eq!(rx_f.pkts, rx_m.pkts);
    assert_eq!(rx_f.pkts_offloaded, rx_m.pkts_offloaded);
    assert_eq!(rx_f.resync_requests, rx_m.resync_requests);
}
