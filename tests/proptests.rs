//! Property-based tests over the core invariants, on the in-repo
//! `ano-testkit` harness (hermetic `proptest` stand-in).
//!
//! Failures print a minimal shrunk counterexample plus an
//! `ANO_TESTKIT_SEED=<seed>` replay line. Counterexamples worth keeping are
//! committed as *named replay cases* (explicit inputs, `runner::replay`)
//! rather than opaque RNG-state hashes — see `tcp_regression_len_10137`
//! below, the port of the historical `proptest-regressions` entry.

use ano_testkit::gen::{usize_in, vec_bool, vec_of, vec_u8};
use ano_testkit::prop_test;

use autonomous_nic_offloads::core::demo::{self, DemoFlow};
use autonomous_nic_offloads::core::msg::DataRef;
use autonomous_nic_offloads::core::rx::RxEngine;
use autonomous_nic_offloads::crypto::aes::Aes;
use autonomous_nic_offloads::crypto::crc32c::{combine, crc32c, Crc32c};
use autonomous_nic_offloads::crypto::gcm::{seal, Direction, GcmStream};
use autonomous_nic_offloads::tcp::conn::TcpEndpoint;
use autonomous_nic_offloads::tcp::segment::{FlowId, SkbFlags};
use autonomous_nic_offloads::tcp::TcpConfig;
use ano_sim::payload::Payload;
use ano_sim::time::SimTime;

/// §3.2's precondition: incremental AES-GCM over arbitrary byte ranges
/// equals one-shot (checked as a reusable body so replay cases can call it).
fn check_gcm_incremental(data: &[u8], splits: &[usize]) {
    let aes = Aes::new_128(&[0x11; 16]);
    let iv = [5u8; 12];
    let mut oneshot = data.to_vec();
    let tag = seal(&aes, &iv, b"hdr", &mut oneshot);

    let mut cuts: Vec<usize> = splits.iter().map(|s| s % data.len()).collect();
    cuts.push(0);
    cuts.push(data.len());
    cuts.sort_unstable();
    cuts.dedup();

    let mut buf = data.to_vec();
    let mut s = GcmStream::new(Aes::new_128(&[0x11; 16]), &iv, b"hdr", Direction::Encrypt);
    for w in cuts.windows(2) {
        s.process(&mut buf[w[0]..w[1]]);
    }
    assert_eq!(buf, oneshot);
    assert_eq!(s.tag(), tag);
}

/// TCP delivers exactly the sent stream under an arbitrary loss schedule
/// (drops applied round-robin to the sender's data segments; recovery is
/// driven by SACK, fast retransmit, and the RTO with backoff).
fn check_tcp_exactly_once(len: usize, drops: &[bool]) {
    let data: Vec<u8> = (0..len).map(|i| (i % 253) as u8).collect();
    let mut a = TcpEndpoint::new(FlowId(1), TcpConfig::default());
    let mut b = TcpEndpoint::new(FlowId(2), TcpConfig::default());
    a.send(Payload::real(data.clone()));
    let mut t = 0u64;
    let mut drop_i = 0usize;
    let mut got = Vec::new();
    for iter in 0..40_000 {
        t += 50;
        let now = SimTime::from_micros(t);
        if let Some(d) = a.rto_deadline() {
            if d <= now {
                a.on_rto(now);
            }
        }
        let mut quiet = true;
        while let Some(seg) = a.poll_transmit(now) {
            quiet = false;
            // Arbitrary loss schedule, but let the tail drain so every
            // run terminates (a 100%-loss schedule proves nothing).
            let dropped = iter < 20_000 && !seg.payload.is_empty() && drops[drop_i % drops.len()];
            drop_i += 1;
            if !dropped {
                b.on_packet_wnd(
                    seg.seq,
                    seg.ack,
                    seg.wnd,
                    &seg.sack,
                    seg.payload,
                    SkbFlags::default(),
                    now,
                );
            }
        }
        for c in b.take_ready() {
            got.extend_from_slice(&c.payload.to_vec());
            b.consume(c.payload.len() as u64);
        }
        while let Some(seg) = b.poll_transmit(now) {
            quiet = false;
            a.on_packet_wnd(
                seg.seq,
                seg.ack,
                seg.wnd,
                &seg.sack,
                seg.payload,
                SkbFlags::default(),
                now,
            );
        }
        if quiet {
            if a.is_quiescent() && got.len() == data.len() {
                break;
            }
            // Nothing in flight to react to: jump the clock to the next
            // retransmission deadline (RTO backoff reaches seconds).
            if let Some(d) = a.rto_deadline() {
                t = t.max(d.as_nanos() / 1_000);
            }
        }
    }
    assert_eq!(got, data, "stream delivered exactly once, in order");
}

prop_test! {
    cases = 24;
    fn gcm_incremental_equals_oneshot(
        data in vec_u8(1..2048),
        splits in vec_of(usize_in(1..2048), 0..6),
    ) {
        check_gcm_incremental(&data, &splits);
    }
}

prop_test! {
    cases = 32;
    /// CRC32C combine over any split equals the whole-buffer digest.
    fn crc_combine_any_split(
        data in vec_u8(0..4096),
        cut in usize_in(0..4096),
    ) {
        let k = if data.is_empty() { 0 } else { cut % data.len() };
        let (a, b) = data.split_at(k);
        assert_eq!(combine(crc32c(a), crc32c(b), b.len() as u64), crc32c(&data));
        let mut inc = Crc32c::new();
        inc.update(a);
        inc.update(b);
        assert_eq!(inc.finalize(), crc32c(&data));
    }
}

prop_test! {
    cases = 24;
    fn tcp_exactly_once_under_loss(
        len in usize_in(1..30_000),
        drops in vec_bool(64),
    ) {
        check_tcp_exactly_once(len, &drops);
    }
}

prop_test! {
    cases = 24;
    /// The offload engine's transformation is packetization-invariant: any
    /// way of cutting an in-sequence stream into packets produces the same
    /// decrypted bytes and all-offloaded packets.
    fn rx_engine_packetization_invariant(
        bodies in vec_of(vec_u8(1..300), 1..6),
        mtu in usize_in(16..600),
    ) {
        let stream: Vec<u8> = bodies.iter().flat_map(|b| demo::encode_msg(b)).collect();
        let mut engine = RxEngine::new(Box::new(DemoFlow::rx_functional(demo::DEFAULT_KEY)), 0, 0);
        let mut out = Vec::new();
        let mut off = 0u64;
        for chunk in stream.chunks(mtu) {
            let mut buf = chunk.to_vec();
            let flags = engine.on_packet(off, &mut DataRef::Real(&mut buf));
            assert!(flags.tls_decrypted, "in-sequence packets all offload");
            out.extend_from_slice(&buf);
            off += chunk.len() as u64;
        }
        // Decrypted bodies appear in place.
        let mut pos = 0usize;
        for body in &bodies {
            let plain = &out[pos + demo::HDR_LEN..pos + demo::HDR_LEN + body.len()];
            assert_eq!(plain, &body[..]);
            pos += demo::HDR_LEN + body.len() + 1;
        }
    }
}

prop_test! {
    cases = 48;
    /// `Samples::percentile` with its sorted cache (invalidated on `add`)
    /// matches the naive clone-and-sort implementation across interleaved
    /// add/query sequences and arbitrary percentile points.
    fn samples_percentile_matches_naive(
        raw in vec_of(usize_in(0..1_000_000), 1..200),
        queries in vec_of(usize_in(0..101), 1..8),
    ) {
        let mut s = ano_sim::stats::Samples::new();
        let mut naive: Vec<f64> = Vec::new();
        let cut = raw.len() / 2;
        for &v in &raw[..cut] {
            s.add(v as f64);
            naive.push(v as f64);
        }
        let naive_pct = |vals: &[f64], p: f64| -> f64 {
            if vals.is_empty() {
                return 0.0;
            }
            let mut v = vals.to_vec();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize]
        };
        for &q in &queries {
            let p = q as f64;
            assert_eq!(s.percentile(p), naive_pct(&naive, p), "p{p} before growth");
        }
        // Grow after querying: the cache must be invalidated, not stale.
        for &v in &raw[cut..] {
            s.add(v as f64);
            naive.push(v as f64);
        }
        for &q in &queries {
            let p = q as f64;
            assert_eq!(s.percentile(p), naive_pct(&naive, p), "p{p} after growth");
        }
    }
}

/// Named replay of the historical `proptest-regressions` entry
/// (`cc 8ed59643…`, shrunk to `len = 10137` with an alternating-drop
/// schedule): a tail-loss pattern that once wedged loss recovery.
#[test]
fn tcp_regression_len_10137() {
    let mut drops = [false; 64];
    for i in [2usize, 3, 5, 7, 9, 11, 13, 14] {
        drops[i] = true;
    }
    ano_testkit::replay("tcp_regression_len_10137", (10137usize, drops.to_vec()), |(len, drops)| {
        check_tcp_exactly_once(*len, drops);
    });
}
