//! Property-based tests over the core invariants.

use proptest::prelude::*;

use autonomous_nic_offloads::core::demo::{self, DemoFlow};
use autonomous_nic_offloads::core::msg::DataRef;
use autonomous_nic_offloads::core::rx::RxEngine;
use autonomous_nic_offloads::crypto::aes::Aes;
use autonomous_nic_offloads::crypto::crc32c::{combine, crc32c, Crc32c};
use autonomous_nic_offloads::crypto::gcm::{seal, Direction, GcmStream};
use autonomous_nic_offloads::tcp::conn::TcpEndpoint;
use autonomous_nic_offloads::tcp::segment::{FlowId, SkbFlags};
use autonomous_nic_offloads::tcp::TcpConfig;
use ano_sim::payload::Payload;
use ano_sim::time::SimTime;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// §3.2's precondition, verified over random data and split points:
    /// incremental AES-GCM over arbitrary byte ranges equals one-shot.
    #[test]
    fn gcm_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 1..2048),
        splits in proptest::collection::vec(1usize..2048, 0..6),
    ) {
        let aes = Aes::new_128(&[0x11; 16]);
        let iv = [5u8; 12];
        let mut oneshot = data.clone();
        let tag = seal(&aes, &iv, b"hdr", &mut oneshot);

        let mut cuts: Vec<usize> = splits.into_iter().map(|s| s % data.len()).collect();
        cuts.push(0);
        cuts.push(data.len());
        cuts.sort_unstable();
        cuts.dedup();

        let mut buf = data.clone();
        let mut s = GcmStream::new(aes, &iv, b"hdr", Direction::Encrypt);
        for w in cuts.windows(2) {
            s.process(&mut buf[w[0]..w[1]]);
        }
        prop_assert_eq!(buf, oneshot);
        prop_assert_eq!(s.tag(), tag);
    }

    /// CRC32C combine over any split equals the whole-buffer digest.
    #[test]
    fn crc_combine_any_split(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
        cut in any::<prop::sample::Index>(),
    ) {
        let k = if data.is_empty() { 0 } else { cut.index(data.len()) };
        let (a, b) = data.split_at(k);
        prop_assert_eq!(combine(crc32c(a), crc32c(b), b.len() as u64), crc32c(&data));
        let mut inc = Crc32c::new();
        inc.update(a);
        inc.update(b);
        prop_assert_eq!(inc.finalize(), crc32c(&data));
    }

    /// TCP delivers exactly the sent stream under arbitrary loss schedules
    /// (with retransmission driven by the RTO).
    #[test]
    fn tcp_exactly_once_under_loss(
        len in 1usize..30_000,
        drops in proptest::collection::vec(any::<bool>(), 64),
    ) {
        let data: Vec<u8> = (0..len).map(|i| (i % 253) as u8).collect();
        let mut a = TcpEndpoint::new(FlowId(1), TcpConfig::default());
        let mut b = TcpEndpoint::new(FlowId(2), TcpConfig::default());
        a.send(Payload::real(data.clone()));
        let mut t = 0u64;
        let mut drop_i = 0usize;
        let mut got = Vec::new();
        for iter in 0..40_000 {
            t += 50;
            let now = SimTime::from_micros(t);
            if let Some(d) = a.rto_deadline() {
                if d <= now {
                    a.on_rto(now);
                }
            }
            let mut quiet = true;
            while let Some(seg) = a.poll_transmit(now) {
                quiet = false;
                // Arbitrary loss schedule, but let the tail drain so every
                // run terminates (a 100%-loss schedule proves nothing).
                let dropped =
                    iter < 20_000 && !seg.payload.is_empty() && drops[drop_i % drops.len()];
                drop_i += 1;
                if !dropped {
                    b.on_packet_wnd(seg.seq, seg.ack, seg.wnd, &seg.sack, seg.payload, SkbFlags::default(), now);
                }
            }
            for c in b.take_ready() {
                got.extend_from_slice(&c.payload.to_vec());
                b.consume(c.payload.len() as u64);
            }
            while let Some(seg) = b.poll_transmit(now) {
                quiet = false;
                a.on_packet_wnd(seg.seq, seg.ack, seg.wnd, &seg.sack, seg.payload, SkbFlags::default(), now);
            }
            if quiet {
                if a.is_quiescent() && got.len() == data.len() {
                    break;
                }
                // Nothing in flight to react to: jump the clock to the next
                // retransmission deadline (RTO backoff reaches seconds).
                if let Some(d) = a.rto_deadline() {
                    t = t.max(d.as_nanos() / 1_000);
                }
            }
        }
        prop_assert_eq!(got, data, "stream delivered exactly once, in order");
    }

    /// The offload engine's transformation is packetization-invariant: any
    /// way of cutting an in-sequence stream into packets produces the same
    /// decrypted bytes and all-offloaded packets.
    #[test]
    fn rx_engine_packetization_invariant(
        bodies in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..300), 1..6),
        mtu in 16usize..600,
    ) {
        let stream: Vec<u8> = bodies.iter().flat_map(|b| demo::encode_msg(b)).collect();
        let mut engine = RxEngine::new(Box::new(DemoFlow::rx_functional(demo::DEFAULT_KEY)), 0, 0);
        let mut out = Vec::new();
        let mut off = 0u64;
        for chunk in stream.chunks(mtu) {
            let mut buf = chunk.to_vec();
            let flags = engine.on_packet(off, &mut DataRef::Real(&mut buf));
            prop_assert!(flags.tls_decrypted, "in-sequence packets all offload");
            out.extend_from_slice(&buf);
            off += chunk.len() as u64;
        }
        // Decrypted bodies appear in place.
        let mut pos = 0usize;
        for body in &bodies {
            let plain = &out[pos + demo::HDR_LEN..pos + demo::HDR_LEN + body.len()];
            prop_assert_eq!(plain, &body[..]);
            pos += demo::HDR_LEN + body.len() + 1;
        }
    }
}
